package bitset

import (
	"math/rand"
	"strings"
	"testing"
)

// fillPattern materialises one named adversarial word pattern into b.
func fillPattern(b *Bitset, name string, rng *rand.Rand) {
	switch name {
	case "zero":
		// leave all bits clear
	case "ones":
		for i := uint64(0); i < b.Len(); i++ {
			b.Set(i)
		}
	case "alternating":
		for i := uint64(0); i < b.Len(); i += 2 {
			b.Set(i)
		}
	case "tail-only":
		// only bits in the final (possibly partial) word
		for i := b.Len() &^ 63; i < b.Len(); i++ {
			b.Set(i)
		}
	case "random":
		for i := uint64(0); i < b.Len(); i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
	default:
		panic("unknown pattern " + name)
	}
}

var kernelPatterns = []string{"zero", "ones", "alternating", "tail-only", "random"}

// Index shapes: random probes, duplicate-heavy probes, boundary probes
// (first and last bit), and a sequential sweep. Sizes cross the 64-block
// boundary both exactly and with tails.
func kernelIndexSets(n uint64, size int, rng *rand.Rand) map[string][]uint64 {
	random := make([]uint64, size)
	for i := range random {
		random[i] = uint64(rng.Int63n(int64(n)))
	}
	dup := make([]uint64, size)
	for i := range dup {
		dup[i] = uint64(i%3) * (n - 1) / 2
	}
	boundary := make([]uint64, size)
	for i := range boundary {
		if i%2 == 0 {
			boundary[i] = 0
		} else {
			boundary[i] = n - 1
		}
	}
	seq := make([]uint64, size)
	for i := range seq {
		seq[i] = uint64(i) % n
	}
	return map[string][]uint64{"random": random, "dup": dup, "boundary": boundary, "seq": seq}
}

// The dispatched kernels, the blocked kernels, and the portable reference
// must agree bit for bit on every pattern × index-shape × size, including
// the maintained ones counts.
func TestKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{1, 3, 63, 64, 65, 127, 128, 200, 6400}
	for _, nBits := range []uint64{64, 1000, 1 << 16} {
		src := New(nBits)
		for _, pat := range kernelPatterns {
			src.Reset()
			fillPattern(src, pat, rng)
			for _, size := range sizes {
				for shape, idx := range kernelIndexSets(nBits, size, rng) {
					gotB := src.Gather(idx)
					gotBlocked := New(uint64(size))
					gotBlocked.ones = gatherWordsBlocked(gotBlocked.words, src.words, src.n, idx)
					want := src.GatherRef(idx)
					if !gotB.Equal(want) || gotB.Count() != want.Count() {
						t.Fatalf("gather mismatch: n=%d pat=%s shape=%s size=%d", nBits, pat, shape, size)
					}
					if !gotBlocked.Equal(want) || gotBlocked.Count() != want.Count() {
						t.Fatalf("blocked gather mismatch: n=%d pat=%s shape=%s size=%d", nBits, pat, shape, size)
					}

					other := New(uint64(size))
					fillPattern(other, kernelPatterns[size%len(kernelPatterns)], rng)
					if got, want := src.GatherXorCount(idx, other), src.GatherXorCountRef(idx, other); got != want {
						t.Fatalf("gatherxor mismatch: n=%d pat=%s shape=%s size=%d: %d != %d",
							nBits, pat, shape, size, got, want)
					}
					if got, want := gatherXorCountBlocked(src.words, src.n, idx, other.words), src.GatherXorCountRef(idx, other); got != want {
						t.Fatalf("blocked gatherxor mismatch: n=%d pat=%s shape=%s size=%d: %d != %d",
							nBits, pat, shape, size, got, want)
					}
				}
			}
		}
	}
}

func TestXorCountWordsKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nBits := range []uint64{1, 63, 64, 65, 256, 6400} {
		for _, patA := range kernelPatterns {
			for _, patB := range kernelPatterns {
				a := New(nBits)
				b := New(nBits)
				fillPattern(a, patA, rng)
				fillPattern(b, patB, rng)
				want := a.XorCountWordsRef(b.UnsafeWords())
				if got := a.XorCountWords(b.UnsafeWords()); got != want {
					t.Fatalf("n=%d %s^%s: dispatch %d != ref %d", nBits, patA, patB, got, want)
				}
				if want != a.XorCount(b) {
					t.Fatalf("n=%d %s^%s: XorCount disagrees with words path", nBits, patA, patB)
				}
			}
		}
	}
}

// Out-of-range indices must panic with the identical message from every
// kernel, at every offset within a block (the blocked kernel checks four
// at a time and must still report the first bad index).
func TestKernelRangePanics(t *testing.T) {
	src := New(100)
	other64 := New(64)
	for _, badAt := range []int{0, 1, 2, 3, 31, 62, 63} {
		idx := make([]uint64, 64)
		idx[badAt] = 100 // == n, out of range
		wantMsg := "bitset: index 100 out of range [0, 100)"
		for name, fn := range map[string]func(){
			"Gather":            func() { src.Gather(idx) },
			"GatherRef":         func() { src.GatherRef(idx) },
			"blocked gather":    func() { gatherWordsBlocked(make([]uint64, 1), src.words, src.n, idx) },
			"GatherXorCount":    func() { src.GatherXorCount(idx, other64) },
			"GatherXorCountRef": func() { src.GatherXorCountRef(idx, other64) },
			"blocked gatherxor": func() { gatherXorCountBlocked(src.words, src.n, idx, other64.words) },
		} {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("%s badAt=%d: no panic", name, badAt)
					}
					if msg, ok := r.(string); !ok || !strings.Contains(msg, wantMsg) {
						t.Fatalf("%s badAt=%d: panic %v, want %q", name, badAt, r, wantMsg)
					}
				}()
				fn()
			}()
		}
	}
}

// A short tail (under one block) with a bad index must also panic from the
// tail loops.
func TestKernelRangePanicsTail(t *testing.T) {
	src := New(50)
	idx := []uint64{1, 2, 50}
	for name, fn := range map[string]func(){
		"blocked gather":    func() { gatherWordsBlocked(make([]uint64, 1), src.words, src.n, idx) },
		"blocked gatherxor": func() { gatherXorCountBlocked(src.words, src.n, idx, New(3).words) },
		"ref gather":        func() { src.GatherRef(idx) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic for tail out-of-range", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkGatherScalar(b *testing.B) {
	benchGather(b, func(src *Bitset, idx []uint64) uint64 { return src.GatherRef(idx).Count() })
}

func BenchmarkGatherBlocked(b *testing.B) {
	out := make([]uint64, 100)
	benchGather(b, func(src *Bitset, idx []uint64) uint64 {
		return gatherWordsBlocked(out, src.words, src.n, idx)
	})
}

func BenchmarkGatherXorCountScalar(b *testing.B) {
	o := New(6400)
	benchGather(b, func(src *Bitset, idx []uint64) uint64 { return src.GatherXorCountRef(idx, o) })
}

func BenchmarkGatherXorCountBlocked(b *testing.B) {
	o := New(6400)
	benchGather(b, func(src *Bitset, idx []uint64) uint64 {
		return gatherXorCountBlocked(src.words, src.n, idx, o.words)
	})
}

var benchOnes uint64

// benchGather times fn over k=6400 random probes into a 2 MiB array — the
// paper-scale compare shape.
func benchGather(b *testing.B, fn func(*Bitset, []uint64) uint64) {
	rng := rand.New(rand.NewSource(1))
	src := New(1 << 24)
	for i := 0; i < 1<<20; i++ {
		src.Set(uint64(rng.Int63n(1 << 24)))
	}
	idx := make([]uint64, 6400)
	for i := range idx {
		idx[i] = uint64(rng.Int63n(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchOnes += fn(src, idx)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(idx)), "ns/probe")
}
