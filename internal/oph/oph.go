// Package oph implements One Permutation Hashing (Li, Owen, Zhang,
// NIPS'12), the paper's O(1)-per-update baseline, with the §III dynamic
// extension and the three densification schemes from the related work:
// rotation (Shrivastava & Li, ICML'14), improved ½-left/right densification
// (Shrivastava & Li, UAI'14), and optimal densification via 2-universal
// re-hashing (Shrivastava, ICML'17).
//
// OPH hashes every item once; the hash value selects one of k bins and the
// minimum hash within each bin is the bin's register. Only one register is
// touched per update, hence O(1). Bins that receive no item stay empty; the
// estimator either skips them (the NIPS'12 form the paper uses) or fills
// them by densification (static sets only).
//
// Like MinHash, the dynamic extension cannot recover a bin's second
// minimum after the minimum is deleted — the bin is emptied, producing the
// sampling bias the paper measures. That behaviour is intentional here.
package oph

import (
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
)

// bin is one OPH register: the minimum item hash in the bin and the item
// achieving it.
type bin struct {
	hash     uint64
	item     stream.Item
	occupied bool
}

// Sketch is a dynamic OPH structure over all users of a stream.
type Sketch struct {
	k    int
	seed uint64
	bins map[stream.User][]bin
	card map[stream.User]int64
}

// New creates an OPH sketch with k bins per user.
func New(k int, seed uint64) *Sketch {
	if k <= 0 {
		panic("oph: k must be positive")
	}
	return &Sketch{
		k:    k,
		seed: seed,
		bins: make(map[stream.User][]bin),
		card: make(map[stream.User]int64),
	}
}

// K returns the number of bins per user.
func (s *Sketch) K() int { return s.k }

// BitsPerUser returns the §V accounting: k registers of 32 bits.
func (s *Sketch) BitsPerUser() uint64 { return 32 * uint64(s.k) }

// hashItem returns the single permutation value of an item; the top bits
// choose the bin (Lemire reduction preserves the "equal ranges" structure
// of the original [p(j−1)/k, pj/k) bins), the full value is the register.
func (s *Sketch) hashItem(i stream.Item) (binIdx int, h uint64) {
	h = hashing.Hash64(uint64(i), s.seed)
	return int(hashing.Reduce(h, uint64(s.k))), h
}

// Process folds one element into the sketch in O(1): one hash, one bin.
func (s *Sketch) Process(e stream.Edge) {
	bins := s.bins[e.User]
	if bins == nil {
		bins = make([]bin, s.k)
		s.bins[e.User] = bins
	}
	j, h := s.hashItem(e.Item)
	switch e.Op {
	case stream.Insert:
		s.card[e.User]++
		if !bins[j].occupied || h < bins[j].hash {
			bins[j] = bin{hash: h, item: e.Item, occupied: true}
		}
	case stream.Delete:
		s.card[e.User]--
		if bins[j].occupied && bins[j].item == e.Item {
			bins[j].occupied = false
		}
	}
}

// Cardinality returns the tracked n_u.
func (s *Sketch) Cardinality(u stream.User) int64 { return s.card[u] }

// EstimateJaccard implements the NIPS'12 estimator used in §III:
//
//	Ĵ = Σ 1(oph_j(S₁) = oph_j(S₂) ≠ ∅) / Σ 1(oph_j(S₁) ≠ ∅ ∨ oph_j(S₂) ≠ ∅).
func (s *Sketch) EstimateJaccard(u, v stream.User) float64 {
	bu, bv := s.bins[u], s.bins[v]
	if bu == nil || bv == nil {
		return 0
	}
	matches, nonEmpty := 0, 0
	for j := 0; j < s.k; j++ {
		ou, ov := bu[j].occupied, bv[j].occupied
		if !ou && !ov {
			continue
		}
		nonEmpty++
		if ou && ov && bu[j].hash == bv[j].hash {
			matches++
		}
	}
	if nonEmpty == 0 {
		return 0
	}
	return float64(matches) / float64(nonEmpty)
}

// EstimateCommonItems converts Ĵ through s = J·(n_u+n_v)/(J+1).
func (s *Sketch) EstimateCommonItems(u, v stream.User) float64 {
	j := s.EstimateJaccard(u, v)
	return j * float64(s.card[u]+s.card[v]) / (j + 1)
}

// FromSet builds a static OPH sketch of an item set under user key 0.
func FromSet(items []stream.Item, k int, seed uint64) *Sketch {
	s := New(k, seed)
	for _, it := range items {
		s.Process(stream.Edge{User: 0, Item: it, Op: stream.Insert})
	}
	return s
}

// Signature exposes the raw bins of user u: value and occupancy.
// Empty bins yield (0, false).
func (s *Sketch) Signature(u stream.User) ([]uint64, []bool) {
	bins := s.bins[u]
	vals := make([]uint64, s.k)
	occ := make([]bool, s.k)
	for j := 0; j < s.k; j++ {
		if bins != nil && bins[j].occupied {
			vals[j] = bins[j].hash
			occ[j] = true
		}
	}
	return vals, occ
}
