package oph

import (
	"math"
	"testing"

	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/stream"
)

func process(s *Sketch, edges []stream.Edge) {
	for _, e := range edges {
		s.Process(e)
	}
}

func TestStaticJaccardAccuracy(t *testing.T) {
	const (
		trials = 25
		k      = 256
		size   = 500 // > k so most bins are occupied
	)
	for _, wantJ := range []float64{0.1, 0.5, 0.9} {
		common := gen.PlantedJaccard(size, wantJ)
		trueJ := float64(common) / float64(2*size-common)
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			s := New(k, uint64(trial))
			process(s, gen.PlantedPair(1, 2, size, size, common, int64(trial)))
			sum += s.EstimateJaccard(1, 2)
		}
		avg := sum / trials
		if math.Abs(avg-trueJ) > 0.05 {
			t.Errorf("J=%.2f: mean estimate %.3f", trueJ, avg)
		}
	}
}

func TestSparseSetsUseNonEmptyDenominator(t *testing.T) {
	// Few items, many bins: the NIPS'12 estimator must divide by the
	// non-empty bin count, not k, or sparse sets would be crushed to ~0.
	const k = 512
	s := New(k, 7)
	items := []stream.Item{1, 2, 3, 4, 5}
	for _, it := range items {
		s.Process(stream.Edge{User: 1, Item: it, Op: stream.Insert})
		s.Process(stream.Edge{User: 2, Item: it, Op: stream.Insert})
	}
	if got := s.EstimateJaccard(1, 2); got != 1 {
		t.Errorf("identical sparse sets: Ĵ = %v, want 1", got)
	}
}

func TestProcessTouchesOneBin(t *testing.T) {
	// O(1) semantics: an insert may change at most one register.
	s := New(64, 3)
	s.Process(stream.Edge{User: 1, Item: 100, Op: stream.Insert})
	before, occBefore := s.Signature(1)
	s.Process(stream.Edge{User: 1, Item: 200, Op: stream.Insert})
	after, occAfter := s.Signature(1)
	changed := 0
	for j := range before {
		if before[j] != after[j] || occBefore[j] != occAfter[j] {
			changed++
		}
	}
	if changed > 1 {
		t.Errorf("insert changed %d bins", changed)
	}
}

func TestDeletionEmptiesOnlyOwningBin(t *testing.T) {
	s := New(32, 5)
	s.Process(stream.Edge{User: 1, Item: 42, Op: stream.Insert})
	_, occ := s.Signature(1)
	occupied := 0
	for _, o := range occ {
		if o {
			occupied++
		}
	}
	if occupied != 1 {
		t.Fatalf("one insert occupied %d bins", occupied)
	}
	s.Process(stream.Edge{User: 1, Item: 42, Op: stream.Delete})
	_, occ = s.Signature(1)
	for j, o := range occ {
		if o {
			t.Errorf("bin %d still occupied after deleting its only item", j)
		}
	}
}

func TestDeletionBiasExists(t *testing.T) {
	// The §III sampling bias depends on the *history*, not just the
	// final sets: user 1 inserts [100, 400) directly, user 2 inserts
	// [0, 400) and then unsubscribes [0, 100). Both end with the same
	// set, so true J = 1, but each bin of user 2 whose minimum fell in
	// the deleted prefix (≈ 1/4 of bins) is emptied and never refills,
	// capping the estimate well below 1.
	const k = 128
	sum := 0.0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		s := New(k, uint64(trial))
		for i := 100; i < 400; i++ {
			s.Process(stream.Edge{User: 1, Item: stream.Item(i), Op: stream.Insert})
		}
		for i := 0; i < 400; i++ {
			s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Insert})
		}
		for i := 0; i < 100; i++ {
			s.Process(stream.Edge{User: 2, Item: stream.Item(i), Op: stream.Delete})
		}
		sum += s.EstimateJaccard(1, 2)
	}
	avg := sum / trials
	if avg > 0.9 {
		t.Errorf("expected visible deletion bias on identical sets (J=1), estimate %.3f"+
			" (baseline no longer reproduces the paper's flaw)", avg)
	}
}

func TestEstimateUnknownUsers(t *testing.T) {
	s := New(8, 1)
	if s.EstimateJaccard(5, 6) != 0 {
		t.Error("unknown users should estimate 0")
	}
	if s.EstimateCommonItems(5, 6) != 0 {
		t.Error("unknown users common should be 0")
	}
}

func TestCommonItemsIdentity(t *testing.T) {
	const size, common = 600, 300
	s := New(256, 3)
	process(s, gen.PlantedPair(1, 2, size, size, common, 5))
	est := s.EstimateCommonItems(1, 2)
	if math.Abs(est-common)/common > 0.25 {
		t.Errorf("ŝ = %.1f, want ~%d", est, common)
	}
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	New(0, 1)
}

func TestDensifiedAccuracySparse(t *testing.T) {
	// Sparse regime (size < k) is where densification matters.
	const (
		trials = 30
		k      = 256
		size   = 60
	)
	schemes := map[string]func(*Sketch, stream.User) *Densified{
		"rotation": (*Sketch).DensifyRotation,
		"improved": (*Sketch).DensifyImproved,
		"optimal":  (*Sketch).DensifyOptimal,
	}
	for name, densify := range schemes {
		for _, wantJ := range []float64{0.3, 0.7} {
			common := gen.PlantedJaccard(size, wantJ)
			trueJ := float64(common) / float64(2*size-common)
			sum := 0.0
			for trial := 0; trial < trials; trial++ {
				s := New(k, uint64(trial))
				process(s, gen.PlantedPair(1, 2, size, size, common, int64(trial)))
				da := densify(s, 1)
				db := densify(s, 2)
				sum += da.EstimateJaccard(db)
			}
			avg := sum / trials
			if math.Abs(avg-trueJ) > 0.06 {
				t.Errorf("%s J=%.2f: mean estimate %.3f", name, trueJ, avg)
			}
		}
	}
}

func TestDensifyIdenticalSetsPerfect(t *testing.T) {
	// Identical sets must densify to identical signatures (J = 1) under
	// every scheme — the shared-donor property.
	items := []stream.Item{10, 20, 30}
	s := New(64, 9)
	for _, it := range items {
		s.Process(stream.Edge{User: 1, Item: it, Op: stream.Insert})
		s.Process(stream.Edge{User: 2, Item: it, Op: stream.Insert})
	}
	for name, densify := range map[string]func(*Sketch, stream.User) *Densified{
		"rotation": (*Sketch).DensifyRotation,
		"improved": (*Sketch).DensifyImproved,
		"optimal":  (*Sketch).DensifyOptimal,
	} {
		if got := densify(s, 1).EstimateJaccard(densify(s, 2)); got != 1 {
			t.Errorf("%s: identical sets densified to Ĵ = %v", name, got)
		}
	}
}

func TestDensifyPanics(t *testing.T) {
	s := New(16, 1)
	s.Process(stream.Edge{User: 1, Item: 5, Op: stream.Insert})
	for name, fn := range map[string]func(){
		"all empty": func() { s.DensifyRotation(99) },
		"mismatched k": func() {
			other := New(8, 1)
			other.Process(stream.Edge{User: 1, Item: 5, Op: stream.Insert})
			s.DensifyRotation(1).EstimateJaccard(other.DensifyRotation(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkProcessK100(b *testing.B) {
	s := New(100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(stream.Edge{User: stream.User(i % 1000), Item: stream.Item(i), Op: stream.Insert})
	}
}
