package vos

import (
	"github.com/vossketch/vos/internal/engine"
	"github.com/vossketch/vos/internal/metrics"
)

// Engine is the sharded, pipelined ingestion engine: N independent Sketch
// shards with identical Config, one ingest goroutine per shard fed by
// buffered batch channels, and an exact merged-snapshot query path.
//
// Use it when ingest throughput must scale past one core. Because VOS
// merging is exact for any partition of the stream, a K-shard Engine
// returns (after Flush) bit-identical estimates to a single Sketch that
// consumed the whole stream — sharding costs no accuracy. For a simple
// shared sketch with reader/writer locking, see ConcurrentSketch; for the
// offline equivalent, see PartitionByUser plus Sketch.Merge.
//
// See internal/engine for the full model.
type Engine = engine.Engine

// EngineConfig parameterises an Engine: the per-shard sketch Config plus
// shard count, batch size, queue capacity, linger interval, and the query
// snapshot staleness budget. Zero values select defaults (Shards =
// GOMAXPROCS, BatchSize = 256, QueueSize = 8192 edges, FlushInterval =
// 50ms, SnapshotMaxLag = 0 i.e. exact queries).
type EngineConfig = engine.Config

// ShardStat is one engine shard's health snapshot (counters, backlog, β).
type ShardStat = metrics.ShardStat

// RateMeter converts a monotone counter (e.g. summed ShardStat.Processed)
// into windowed per-second rates for dashboards and harnesses.
type RateMeter = metrics.RateMeter

// TotalShardStats folds Engine.ShardStats into one aggregate row.
func TotalShardStats(stats []ShardStat) ShardStat { return metrics.TotalShardStats(stats) }

// ErrEngineClosed is returned by Engine.Process after Engine.Close.
var ErrEngineClosed = engine.ErrClosed

// NewEngine creates and starts a sharded ingestion engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// MustNewEngine is NewEngine for static configurations; it panics on error.
func MustNewEngine(cfg EngineConfig) *Engine { return engine.MustNew(cfg) }
