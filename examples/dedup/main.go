// Near-duplicate document detection over an evolving corpus.
//
// The paper's introduction cites deduplication (SiLo, USENIX ATC'11) as a
// headline application of similarity estimation. This example treats each
// document as a "user" and its w-word shingles as "items": the Jaccard
// coefficient between shingle sets is the standard near-duplicate signal.
// Documents in a live corpus get edited — which removes old shingles and
// adds new ones, i.e. a fully dynamic stream — exactly the regime VOS
// handles and static sketches do not.
//
// The program indexes a small corpus, flags near-duplicate pairs, then
// edits some documents and shows the verdicts tracking the edits.
//
// Run with:
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"strings"

	"github.com/vossketch/vos"
)

const (
	shingleWords = 3
	nearDupJ     = 0.5 // flag pairs with estimated Jaccard above this
)

// Document is one corpus entry with its current text.
type Document struct {
	Name string
	Text string
}

// Index maintains the sketch and each document's current shingle set (the
// set is needed to compute which shingles an edit adds/removes; a larger
// system would hold it in cold storage while the sketch serves queries).
type Index struct {
	sketch   *vos.Sketch
	shingles map[vos.User]map[vos.Item]struct{}
	names    map[vos.User]string
}

// NewIndex creates an empty deduplication index.
func NewIndex() *Index {
	return &Index{
		sketch: vos.MustNew(vos.Config{
			MemoryBits: 1 << 22,
			SketchBits: 4096,
			Seed:       11,
		}),
		shingles: make(map[vos.User]map[vos.Item]struct{}),
		names:    make(map[vos.User]string),
	}
}

// Upsert adds a document or applies an edit: the sketch receives deletions
// for shingles that disappeared and insertions for new ones.
func (ix *Index) Upsert(doc Document) (added, removed int) {
	id := vos.UserFromString(doc.Name)
	ix.names[id] = doc.Name
	next := shingleSet(doc.Text)
	prev := ix.shingles[id]

	for sh := range prev {
		if _, keep := next[sh]; !keep {
			ix.sketch.Process(vos.Edge{User: id, Item: sh, Op: vos.Delete})
			removed++
		}
	}
	for sh := range next {
		if _, had := prev[sh]; !had {
			ix.sketch.Process(vos.Edge{User: id, Item: sh, Op: vos.Insert})
			added++
		}
	}
	ix.shingles[id] = next
	return added, removed
}

// NearDuplicates returns all indexed pairs whose estimated Jaccard exceeds
// the threshold.
func (ix *Index) NearDuplicates() []string {
	ids := make([]vos.User, 0, len(ix.names))
	for id := range ix.names {
		ids = append(ids, id)
	}
	// Deterministic order for the demo output.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ix.names[ids[j]] < ix.names[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []string
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			est := ix.sketch.Query(ids[i], ids[j])
			if est.Jaccard >= nearDupJ {
				out = append(out, fmt.Sprintf("%s ~ %s (Ĵ = %.2f, ŝ ≈ %.0f shared shingles)",
					ix.names[ids[i]], ix.names[ids[j]], est.Jaccard, est.CommonClamped))
			}
		}
	}
	return out
}

func shingleSet(text string) map[vos.Item]struct{} {
	words := strings.Fields(strings.ToLower(text))
	out := make(map[vos.Item]struct{})
	for i := 0; i+shingleWords <= len(words); i++ {
		sh := strings.Join(words[i:i+shingleWords], " ")
		out[vos.ItemFromString(sh)] = struct{}{}
	}
	return out
}

func main() {
	ix := NewIndex()

	base := strings.Repeat("the quick brown fox jumps over the lazy dog while the cat watches from the warm windowsill and the birds sing in the garden as morning light fills the quiet street ", 6)
	press := Document{Name: "press-release-v1", Text: base}
	// A lightly reworded copy (classic near-duplicate).
	copyText := strings.ReplaceAll(base, "quick brown fox", "swift brown fox")
	copyDoc := Document{Name: "syndicated-copy", Text: copyText}
	// An unrelated article.
	other := Document{Name: "quarterly-report", Text: strings.Repeat(
		"revenue grew in the third quarter driven by subscriptions and the services segment while operating costs held flat across all regions and guidance for the next year remains unchanged pending market review ", 6)}

	for _, d := range []Document{press, copyDoc, other} {
		a, r := ix.Upsert(d)
		fmt.Printf("indexed %-18s (+%d/−%d shingles)\n", d.Name, a, r)
	}

	fmt.Println("\nnear-duplicate pairs after initial indexing:")
	for _, s := range ix.NearDuplicates() {
		fmt.Println("  " + s)
	}

	// The syndicated copy gets substantially rewritten — shingle
	// deletions dominate. A deletion-biased sketch would keep flagging
	// it; VOS tracks the divergence.
	rewritten := strings.ReplaceAll(copyText,
		"the lazy dog while the cat watches",
		"a sleeping hound as three cats stare")
	rewritten = strings.ReplaceAll(rewritten,
		"morning light fills the quiet street",
		"evening shadows cross the busy avenue")
	a, r := ix.Upsert(Document{Name: "syndicated-copy", Text: rewritten})
	fmt.Printf("\nedited syndicated-copy (+%d/−%d shingles)\n", a, r)

	fmt.Println("\nnear-duplicate pairs after the rewrite:")
	dups := ix.NearDuplicates()
	if len(dups) == 0 {
		fmt.Println("  (none — the rewrite pushed similarity below the threshold)")
	}
	for _, s := range dups {
		fmt.Println("  " + s)
	}

	// Show the surviving similarity explicitly.
	est := ix.sketch.Query(vos.UserFromString("press-release-v1"), vos.UserFromString("syndicated-copy"))
	fmt.Printf("\npress-release-v1 vs syndicated-copy after rewrite: Ĵ = %.2f\n", est.Jaccard)
}
