package engine

// Durability: the engine's crash-recovery layer, built on internal/wal.
//
// When Config.Durability names a directory, every batch accepted by
// Process/ProcessBatch is appended to a write-ahead log *before* it is
// routed to the shards, under the configured sync policy. Checkpoint
// atomically persists the merged sketch together with the WAL position it
// covers and then deletes fully covered WAL segments; Open loads the
// newest valid checkpoint and replays only the WAL suffix, so restart cost
// is proportional to the edges since the last checkpoint, not the whole
// graph stream.
//
// Consistency model. Producers hold walMu.RLock across "append to WAL,
// then route to shards", and Checkpoint holds walMu.Lock while it captures
// the WAL position and flushes the shards. Appends therefore never
// straddle a checkpoint: a checkpoint at position p contains exactly the
// edges of WAL records [0, p), and replaying the suffix [p, ...) after
// loading it reconstructs the engine's merged state bit-identically. This
// matters because VOS updates are XOR toggles — replaying an edge twice
// (or dropping one) would corrupt parity, so exact positioning is the
// whole game.
//
// The recovered checkpoint is kept as a frozen base sketch rather than
// being split back into shards (a merged sketch cannot be un-merged).
// Query paths merge it in: snapshots start from the base, Cardinality adds
// the base counter, and QueryLocal — whose answer would silently omit base
// parity bits — disables itself on recovered engines.

import (
	"errors"
	"fmt"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/internal/wal"
)

// ErrNoDurability is returned by Checkpoint on an engine without a
// durability directory, and by Open when the config names none.
var ErrNoDurability = errors.New("engine: no durability directory configured")

// DurabilityConfig enables the write-ahead log and checkpointing.
type DurabilityConfig struct {
	// Dir is the log directory (WAL segments + checkpoints). Created if
	// missing. Required.
	Dir string
	// Sync is the WAL fsync policy: wal.SyncEveryBatch (default, an
	// acknowledged batch is durable), wal.SyncEveryN, or wal.SyncOff.
	Sync wal.SyncPolicy
	// SyncEveryN is the edge interval between fsyncs under wal.SyncEveryN.
	// Default: 4096.
	SyncEveryN int
	// SegmentBytes is the WAL segment rotation threshold. Default: 64 MiB.
	SegmentBytes int64
	// DisableLock skips the advisory flock that makes a second engine on
	// the same directory fail fast instead of corrupting the WAL. Only
	// for filesystems without working flock, or tests that simulate a
	// crash in-process (where the abandoned engine cannot release the
	// lock a real process death would).
	DisableLock bool
}

// walOptions converts the engine-level knobs to wal.Options.
func (d *DurabilityConfig) walOptions() wal.Options {
	return wal.Options{Sync: d.Sync, SyncEveryN: d.SyncEveryN, SegmentBytes: d.SegmentBytes, DisableLock: d.DisableLock}
}

// Open starts a durable engine from cfg.Durability.Dir: it loads the
// newest valid checkpoint (if any), opens the WAL (truncating a torn tail
// left by a crash), replays the WAL suffix past the checkpoint, and only
// then begins accepting new edges. A directory that has never held an
// engine starts empty — Open is also how a durable engine starts fresh.
func Open(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	d := cfg.Durability
	if d == nil || d.Dir == "" {
		return nil, ErrNoDurability
	}
	ckptPos, skBytes, found, err := wal.LatestCheckpoint(d.Dir)
	if err != nil {
		return nil, err
	}
	// A checkpoint is either a plain merged sketch (unwindowed engines) or
	// a serialized bucket ring (windowed engines, which must keep rotating
	// after recovery — a pre-merged sketch cannot be un-merged per bucket).
	// The two modes must not open each other's state: silently flattening
	// a window would stop edges from ever expiring, and silently windowing
	// a flat sketch would expire edges that were never bucketed.
	var base *core.VOS
	var winBase *core.Window
	if found {
		switch {
		case core.IsWindowData(skBytes):
			if cfg.Window == nil {
				return nil, fmt.Errorf("engine: directory holds a windowed checkpoint but Config.Window is nil")
			}
			winBase, err = core.UnmarshalWindow(skBytes)
			if err != nil {
				return nil, fmt.Errorf("engine: load windowed checkpoint: %w", err)
			}
			if winBase.Config().Family != cfg.Sketch.Family {
				return nil, fmt.Errorf("%w: checkpoint was written with the %v hash family, engine is configured for %v",
					core.ErrFamilyMismatch, winBase.Config().Family, cfg.Sketch.Family)
			}
			if winBase.Config() != cfg.Sketch {
				return nil, fmt.Errorf("engine: checkpoint sketch config %+v does not match engine config %+v",
					winBase.Config(), cfg.Sketch)
			}
			if winBase.Buckets() != cfg.Window.Buckets || winBase.BucketDuration() != cfg.Window.BucketDuration {
				return nil, fmt.Errorf("engine: checkpoint window (B=%d, bucket=%v) does not match engine config (B=%d, bucket=%v)",
					winBase.Buckets(), winBase.BucketDuration(), cfg.Window.Buckets, cfg.Window.BucketDuration)
			}
		case cfg.Window != nil:
			return nil, fmt.Errorf("engine: directory holds an unwindowed checkpoint but Config.Window is set")
		default:
			base, err = core.UnmarshalVOS(skBytes)
			if err != nil {
				return nil, fmt.Errorf("engine: load checkpoint: %w", err)
			}
			if base.Config().Family != cfg.Sketch.Family {
				return nil, fmt.Errorf("%w: checkpoint was written with the %v hash family, engine is configured for %v",
					core.ErrFamilyMismatch, base.Config().Family, cfg.Sketch.Family)
			}
			if base.Config() != cfg.Sketch {
				return nil, fmt.Errorf("engine: checkpoint sketch config %+v does not match engine config %+v",
					base.Config(), cfg.Sketch)
			}
		}
	}
	log, err := wal.Open(d.Dir, d.walOptions())
	if err != nil {
		return nil, err
	}
	// Under SyncOff a crash can lose WAL records the checkpoint already
	// covers. The content is safe inside the checkpoint; only the position
	// must not regress, or the next checkpoint would mislabel itself.
	if log.Pos() < ckptPos {
		if err := log.SkipTo(ckptPos); err != nil {
			log.Close()
			return nil, err
		}
	}
	e, err := newEngine(cfg)
	if err != nil {
		log.Close()
		return nil, err
	}
	e.base.Store(base)
	if winBase != nil {
		// Re-align the fresh shard rings to the persisted bucket boundaries
		// so the recovered base and the shards rotate in lockstep. The swap
		// happens before any producer exists; skMu is held for the race
		// detector's benefit only.
		end := winBase.End()
		for _, s := range e.shards {
			win, werr := core.NewWindowAt(cfg.Sketch, cfg.Window.Buckets, cfg.Window.BucketDuration, end)
			if werr != nil {
				e.Close()
				log.Close()
				return nil, werr
			}
			s.skMu.Lock()
			s.win = win
			s.sk = win.Merged()
			s.sk.SetPositionCache(e.pcache)
			s.skMu.Unlock()
		}
		e.winEnd.Store(end.UnixNano())
		e.winBase = winBase
		// Rotation events are not WAL-logged, so the exact bucket each
		// post-checkpoint edge landed in is unrecoverable. Catch the rings
		// up to the present BEFORE replay, so the replayed suffix lands in
		// the bucket covering now: edges are then attributed no older than
		// they really are and can only retire LATE (by at most the
		// checkpoint-to-crash gap), never early — recovery must not
		// silently drop edges that are still inside the window. With a
		// clock behind the checkpoint boundary (tests pin one) this is a
		// no-op and attribution is exact.
		e.AdvanceWindowTo(e.winNow())
	}
	// Replay the suffix through the routing path directly — the log is not
	// attached yet, so replayed edges are not re-appended.
	err = log.Replay(ckptPos, func(_ uint64, edges []stream.Edge) error {
		e.route(edges)
		return nil
	})
	if err != nil {
		e.Close()
		log.Close()
		return nil, fmt.Errorf("engine: replay: %w", err)
	}
	e.Flush()
	e.log = log
	return e, nil
}

// MustOpen is Open for static configurations; it panics on error.
func MustOpen(cfg Config) *Engine {
	e, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Checkpoint atomically persists the engine's merged sketch together with
// the WAL position it covers, then deletes WAL segments every retained
// checkpoint has covered (the newest two checkpoint files are kept, so
// the WAL suffix of the older one survives for fallback). It blocks
// producers for the duration (they queue on the WAL gate), so after it
// returns the checkpoint covers every edge acknowledged before the call.
// It returns the covered position.
func (e *Engine) Checkpoint() (uint64, error) {
	if e.log == nil {
		return 0, ErrNoDurability
	}
	e.walMu.Lock()
	defer e.walMu.Unlock()
	return e.checkpointLocked()
}

// checkpointLocked is Checkpoint's body. Callers hold walMu exclusively
// (or, from Close, have already stopped all producers and workers).
func (e *Engine) checkpointLocked() (uint64, error) {
	pos := e.log.Pos()
	// Everything the checkpoint will claim as covered must itself be
	// durable first, or a crash after segment truncation could lose edges.
	if err := e.log.Sync(); err != nil {
		return 0, err
	}
	e.Flush()
	var data []byte
	if e.cfg.Window != nil {
		// Persist the bucket ring, not the flattened view: recovery must
		// keep retiring buckets on schedule, which needs per-bucket state.
		w, err := e.windowSnapshot()
		if err != nil {
			return 0, err
		}
		data, err = w.MarshalBinary()
		if err != nil {
			return 0, err
		}
	} else {
		var err error
		data, err = e.snapshotMaxLag(0).MarshalBinary()
		if err != nil {
			return 0, err
		}
	}
	if err := wal.WriteCheckpoint(e.cfg.Durability.Dir, pos, data); err != nil {
		return 0, err
	}
	// Rotate first so the segment that was the append target is also
	// reclaimable, then truncate back to the OLDEST retained checkpoint,
	// not just the new one: recovery falls back to the previous checkpoint
	// file if the newest proves unreadable, and that fallback needs its
	// covering WAL suffix to still exist (replay verifies coverage and
	// would otherwise refuse).
	keep := pos
	if all, err := wal.ListCheckpoints(e.cfg.Durability.Dir); err != nil {
		return 0, err
	} else if len(all) > 0 && all[0] < keep {
		keep = all[0]
	}
	if err := e.log.Rotate(); err != nil {
		return 0, err
	}
	if err := e.log.TruncateBefore(keep); err != nil {
		return 0, err
	}
	return pos, nil
}
