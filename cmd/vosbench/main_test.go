package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/vossketch/vos/internal/experiments"
)

func TestParseKs(t *testing.T) {
	got, err := parseIntList("1, 10,100", "-runtime-ks")
	if err != nil || len(got) != 3 || got[2] != 100 {
		t.Errorf("parseIntList = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "-5", "1,,x"} {
		if _, err := parseIntList(bad, "-runtime-ks"); err == nil {
			t.Errorf("parseIntList(%q) accepted", bad)
		}
	}
	// Trailing comma tolerated.
	if got, err := parseIntList("5,", "-shards"); err != nil || len(got) != 1 {
		t.Errorf("trailing comma: %v, %v", got, err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := run("nope", experiments.Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunThroughput(t *testing.T) {
	opts := experiments.Options{
		Seed: 3, K32: 8, Lambda: 2,
		RuntimeUsers: 50, RuntimeEdges: 2_000,
	}
	tables, err := runWithShards("throughput", opts, []int{1, 2}, 8, experiments.TopKANNOptions{}, experiments.UDPSoakOptions{}, experiments.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "throughput" {
		t.Fatalf("tables = %v", tables)
	}
	if len(tables[0].Rows) != 2 {
		t.Fatalf("want one row per shard count, got %d", len(tables[0].Rows))
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("engine estimates diverged from sequential sketch: %v", row)
		}
	}
	// Ids without topology knobs must still dispatch through run.
	if _, err := runWithShards("nope", opts, []int{1}, 8, experiments.TopKANNOptions{}, experiments.UDPSoakOptions{}, experiments.ClusterOptions{}); err == nil {
		t.Error("unknown experiment accepted via runWithShards")
	}
}

func TestRunWindow(t *testing.T) {
	opts := experiments.Options{
		Seed: 3, K32: 8, Lambda: 2,
		RuntimeUsers: 50, RuntimeEdges: 2_000, MaxPairs: 40,
	}
	tables, err := runWithShards("window", opts, []int{1}, 2, experiments.TopKANNOptions{}, experiments.UDPSoakOptions{}, experiments.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "window" {
		t.Fatalf("tables = %v", tables)
	}
	// 3 rotation rows + parity row + 2 accuracy rows, window-parity-gated
	// inside the runner.
	if len(tables[0].Rows) != 6 {
		t.Fatalf("want 6 rows, got %d: %v", len(tables[0].Rows), tables[0].Rows)
	}
	if tables[0].Rows[3][2] != "bit-identical" {
		t.Fatalf("parity row = %v", tables[0].Rows[3])
	}
	if _, err := runWithShards("window", opts, []int{1}, 0, experiments.TopKANNOptions{}, experiments.UDPSoakOptions{}, experiments.ClusterOptions{}); err == nil {
		t.Error("window experiment accepted 0 buckets")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	opts := experiments.Options{
		Scale: 0.002, Seed: 3, K32: 20, Lambda: 2,
		TopUsers: 20, MaxPairs: 30, Checkpoints: 3,
		RuntimeUsers: 40, RuntimeEdges: 500, RuntimeKs: []int{1, 8},
	}
	tables, err := run("abl-dense", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "abl-dense" {
		t.Errorf("tables = %v", tables)
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	tbl := &experiments.Table{ID: "x", Title: "t", Header: []string{"a"}}
	tbl.AddRow("1")
	if err := writeCSV(dir, tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\n1\n" {
		t.Errorf("csv content %q", data)
	}
}

func TestRunQuery(t *testing.T) {
	opts := experiments.Options{
		Seed: 3, K32: 8, Lambda: 2,
		RuntimeUsers: 50, RuntimeEdges: 2_000,
	}
	tables, err := run("query", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "query" {
		t.Fatalf("tables = %v", tables)
	}
	// 3 pair rows + 4 top-K rows, each parity-gated inside the runner.
	if len(tables[0].Rows) != 7 {
		t.Fatalf("want 7 rows, got %d: %v", len(tables[0].Rows), tables[0].Rows)
	}
}
