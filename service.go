package vos

import (
	"context"
	"sync"
	"time"

	"github.com/vossketch/vos/internal/engine"
)

// SimilarityService is the context-aware serving interface of the module:
// one contract for "ingest a dynamic graph stream, answer similarity
// queries over it" that every deployment shape satisfies —
//
//   - NewSketchService / NewConcurrentService wrap an in-process sketch,
//   - NewEngineService wraps the sharded (optionally durable) Engine,
//   - package client implements it over the versioned HTTP API that
//     package server exposes, so swapping an in-process engine for a
//     remote vosd daemon is a one-constructor change.
//
// All methods honour ctx: a cancelled or expired context aborts the call
// with ctx.Err() (for Engine-backed TopK the cancellation is cooperative —
// it actually stops the worker fan-out mid-scan, not just the return).
// Lifecycle errors are typed: ErrClosed after the backing engine has shut
// down, ErrQueryUnavailable for query paths the current state cannot serve.
type SimilarityService interface {
	// Ingest folds a slice of stream elements into the sketch state.
	// Implementations may batch internally; when Ingest returns nil the
	// edges are accepted (remote implementations may still be buffering —
	// see client.Client.Flush). ctx is checked on entry (and periodically
	// by the in-process loops), but an ingest the backing engine has
	// started accepting runs to completion even if ctx is cancelled
	// mid-call: a durable engine has already logged the batch, and
	// abandoning the shard hand-off would desynchronise checkpoints from
	// the WAL. Engine backpressure (full shard queues) therefore blocks
	// past cancellation; bound it with queue sizing, not ctx. Returns
	// ErrClosed once the backing engine has shut down — the edges were
	// NOT accepted.
	Ingest(ctx context.Context, edges []Edge) error
	// Similarity estimates the similarity of users u and v. Returns
	// ErrClosed once the backing engine has shut down and
	// ErrQueryUnavailable when the query path cannot answer in the
	// engine's current state; both mean no estimate was produced —
	// there are no silent zero answers.
	Similarity(ctx context.Context, u, v User) (Estimate, error)
	// TopK returns the n candidates most similar to u, best first.
	// Cancelling ctx aborts an Engine-backed fan-out mid-scan with
	// ctx.Err(); ErrClosed and ErrQueryUnavailable as for Similarity.
	TopK(ctx context.Context, u User, candidates []User, n int) ([]TopKResult, error)
	// Cardinality returns n_u, the tracked item count of user u (over
	// the live window on windowed engines). ErrClosed after shutdown.
	Cardinality(ctx context.Context, u User) (int64, error)
	// Stats summarises the sketch state backing the service (window
	// metadata included on windowed engines). ErrClosed after shutdown.
	Stats(ctx context.Context) (Stats, error)
}

// Checkpointer is the optional durability extension of SimilarityService:
// services backed by a durable Engine (and remote clients talking to one)
// can persist a checkpoint on demand. POST /v1/checkpoint probes for it.
type Checkpointer interface {
	Checkpoint(ctx context.Context) (uint64, error)
}

// Windowed is the optional sliding-window extension of SimilarityService:
// services backed by a windowed Engine report the live window's
// boundaries and accept event time. The server probes for it to honour
// timestamped ingest (the ts fields of POST /v1/edges advance the window)
// and to answer "outside_window" when a query instant predates the
// retained range. Both methods return ErrNoWindow when the backing engine
// has no window configured, and ErrClosed once it has shut down.
type Windowed interface {
	// WindowInfo returns the live window boundaries, advancing them first
	// if the clock has crossed a rotation boundary.
	WindowInfo(ctx context.Context) (WindowInfo, error)
	// AdvanceWindow drives event time: it rotates the window through every
	// bucket boundary up to t. Instants at or before the current boundary
	// are a no-op — the window never moves backwards, so clock-skewed
	// timestamps cannot unwind retired state.
	AdvanceWindow(ctx context.Context, t time.Time) error
}

// ApproxTopK is the optional approximate top-K extension of
// SimilarityService: services backed by an Engine with EngineConfig.ANN
// answer candidates-free top-K probes from the banded-LSH index instead of
// scanning a caller-supplied candidate list. The server probes for it to
// serve POST /v1/topk with mode "ann"; package client implements it over
// that route. TopKApprox returns ErrNoANN when the backing engine has no
// ANN index configured, and ErrClosed once it has shut down.
//
// The approximation is in candidate generation only: every returned
// estimate is computed exactly against the current state and ranked with
// the same total order as TopK, so the result is a subset-ordered prefix
// of the exact scan. Recall depends on the band parameters and the
// workload's similarity structure — see the README's "Approximate top-K"
// section and the topk-ann experiment.
type ApproxTopK interface {
	TopKApprox(ctx context.Context, u User, n int) ([]TopKResult, error)
}

// StateExporter is the optional state-transfer extension of
// SimilarityService: implementations can serialize their complete sketch
// state (the core.VOS wire format, as Unmarshal reads). It is the source
// half of a cluster shard handoff and the gateway's scatter-gather unit —
// pair estimates depend on the merged array's global fill, so a cluster
// query gathers each backend's exported state and queries the XOR-merge.
// GET /v1/cluster/sketch probes for it.
type StateExporter interface {
	// ExportSketch returns the serialized state covering every edge
	// acknowledged before the call.
	ExportSketch(ctx context.Context) ([]byte, error)
}

// StateImporter is the receiving half of a shard handoff: ImportSketch
// XOR-merges a serialized sketch into the implementation's state (and, on
// a durable engine, checkpoints before acknowledging — the imported edges
// exist in no local WAL record). Importing the same state twice cancels
// it; callers must not retry a completed import against the same target.
// POST /v1/cluster/import probes for it.
type StateImporter interface {
	ImportSketch(ctx context.Context, data []byte) error
}

// PartialTopK is the optional degraded-read extension of
// SimilarityService: TopKPartial answers a top-K probe even when part of
// the backing state is unreachable (a draining or crashed cluster
// backend), reporting completeness alongside the results. complete=false
// means the ranking covers only the reachable portion of the state; the
// estimates in it are still computed exactly over that portion. The
// server probes for it on POST /v1/topk and surfaces incompleteness as
// the X-Vos-Partial response header.
type PartialTopK interface {
	TopKPartial(ctx context.Context, u User, candidates []User, n int) ([]TopKResult, bool, error)
}

// ErrQueryUnavailable is returned by query paths that cannot answer in the
// backing engine's current state (e.g. Engine.QueryLocal after checkpoint
// recovery). Callers should fall back to the merged-snapshot query path.
var ErrQueryUnavailable = engine.ErrQueryUnavailable

// ErrNotCoResident is returned by Engine.QueryLocal when the two users live
// on different shards; fall back to Engine.Query.
var ErrNotCoResident = engine.ErrNotCoResident

// ErrClosed is returned by every SimilarityService method once the backing
// engine has been closed. It is the same sentinel as ErrEngineClosed, under
// the name the service layer uses.
var ErrClosed = engine.ErrClosed

// ingestCheckStride is how many edges the in-process Ingest loops fold
// between context polls: frequent enough that a cancelled bulk load stops
// within microseconds, rare enough that the poll never shows on a profile.
const ingestCheckStride = 1024

// engineService adapts *Engine to SimilarityService. Reads flush first —
// read-your-writes: an accepted edge may still sit in a producer buffer or
// shard queue, and the engine's merged snapshot only covers applied edges,
// so querying without the flush could silently miss acknowledged writes
// (the exact silent-zero the typed service contract exists to remove).
// Write-heavy deployments that prefer bounded staleness over
// read-your-writes should query the Engine directly with
// EngineConfig.SnapshotMaxLag set.
type engineService struct {
	e *Engine
}

// NewEngineService wraps a sharded Engine in the SimilarityService
// interface. Queries flush the engine first (read-your-writes); see
// SimilarityService for the context and error contract. The engine's
// lifecycle stays with the caller — closing the engine makes every method
// return ErrClosed.
func NewEngineService(e *Engine) SimilarityService { return &engineService{e: e} }

func (s *engineService) Ingest(ctx context.Context, edges []Edge) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.e.ProcessBatch(edges)
}

func (s *engineService) Similarity(ctx context.Context, u, v User) (Estimate, error) {
	if err := s.flush(ctx); err != nil {
		return Estimate{}, err
	}
	return s.e.QueryContext(ctx, u, v)
}

func (s *engineService) TopK(ctx context.Context, u User, candidates []User, n int) ([]TopKResult, error) {
	if err := s.flush(ctx); err != nil {
		return nil, err
	}
	return s.e.TopKContext(ctx, u, candidates, n)
}

// TopKApprox implements ApproxTopK; ErrNoANN on an engine without
// EngineConfig.ANN. Like the other reads it flushes first, so the probe's
// maintenance pass observes every acknowledged write.
func (s *engineService) TopKApprox(ctx context.Context, u User, n int) ([]TopKResult, error) {
	if err := s.flush(ctx); err != nil {
		return nil, err
	}
	return s.e.TopKApproxContext(ctx, u, n)
}

func (s *engineService) Cardinality(ctx context.Context, u User) (int64, error) {
	if err := s.flush(ctx); err != nil {
		return 0, err
	}
	return s.e.CardinalityContext(ctx, u)
}

func (s *engineService) Stats(ctx context.Context) (Stats, error) {
	if err := s.flush(ctx); err != nil {
		return Stats{}, err
	}
	return s.e.StatsContext(ctx)
}

// Checkpoint implements Checkpointer; ErrEngineNoDurability on a
// memory-only engine.
func (s *engineService) Checkpoint(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.e.Checkpoint()
}

// ExportSketch implements StateExporter: the engine's merged state over
// every acknowledged edge (MarshalBinary flushes and merges exactly).
func (s *engineService) ExportSketch(ctx context.Context) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.e.Closed() {
		return nil, ErrClosed
	}
	return s.e.MarshalBinary()
}

// ImportSketch implements StateImporter (see Engine.ImportSketch for the
// merge, durability, and double-import semantics).
func (s *engineService) ImportSketch(ctx context.Context, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.e.ImportSketch(data)
}

// WindowInfo implements Windowed; ErrNoWindow on an unwindowed engine.
func (s *engineService) WindowInfo(ctx context.Context) (WindowInfo, error) {
	if err := ctx.Err(); err != nil {
		return WindowInfo{}, err
	}
	if s.e.Closed() {
		return WindowInfo{}, ErrClosed
	}
	info, ok := s.e.WindowInfo()
	if !ok {
		return WindowInfo{}, ErrNoWindow
	}
	return info, nil
}

// AdvanceWindow implements Windowed; ErrNoWindow on an unwindowed engine.
func (s *engineService) AdvanceWindow(ctx context.Context, t time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.e.Closed() {
		return ErrClosed
	}
	if !s.e.Windowed() {
		return ErrNoWindow
	}
	s.e.AdvanceWindowTo(t)
	return nil
}

// flush gives reads read-your-writes and converts the lifecycle states
// into the typed errors the interface promises. The closed check is
// best-effort ordering, not a guard: Engine.Flush is itself safe against
// a racing Close (it returns once Close has begun, whose own drain
// applies everything buffered), and the query that follows either sees
// the engine's final state or reports ErrClosed from its own check.
func (s *engineService) flush(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.e.Closed() {
		return ErrClosed
	}
	s.e.Flush()
	return nil
}

// sketchService adapts a bare *Sketch to SimilarityService, serialising
// every call on one mutex — the sketch itself is not safe for concurrent
// use, and a service handed to an HTTP server will be called from many
// goroutines. It is the single-core deployment shape; use NewEngineService
// when ingest must scale.
type sketchService struct {
	mu sync.Mutex
	sk *Sketch
}

// NewSketchService wraps a bare Sketch in the SimilarityService interface.
// Calls are serialised on an internal mutex, so the service is safe for
// concurrent use even though the sketch is not.
func NewSketchService(sk *Sketch) SimilarityService { return &sketchService{sk: sk} }

func (s *sketchService) Ingest(ctx context.Context, edges []Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range edges {
		if i%ingestCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.sk.Process(e)
	}
	return nil
}

func (s *sketchService) Similarity(ctx context.Context, u, v User) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.Query(u, v), nil
}

func (s *sketchService) TopK(ctx context.Context, u User, candidates []User, n int) ([]TopKResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.TopKRecoveredContext(ctx, s.sk.RecoverSketch(u), candidates, n)
}

func (s *sketchService) Cardinality(ctx context.Context, u User) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.Cardinality(u), nil
}

func (s *sketchService) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sk.Stats(), nil
}

// concurrentService adapts *ConcurrentSketch: the wrapper already owns the
// locking, so the adapter only adds the context checks.
type concurrentService struct {
	c *ConcurrentSketch
}

// NewConcurrentService wraps a ConcurrentSketch in the SimilarityService
// interface.
func NewConcurrentService(c *ConcurrentSketch) SimilarityService {
	return &concurrentService{c: c}
}

func (s *concurrentService) Ingest(ctx context.Context, edges []Edge) error {
	for i, e := range edges {
		if i%ingestCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.c.Process(e)
	}
	return nil
}

func (s *concurrentService) Similarity(ctx context.Context, u, v User) (Estimate, error) {
	if err := ctx.Err(); err != nil {
		return Estimate{}, err
	}
	return s.c.Query(u, v), nil
}

func (s *concurrentService) TopK(ctx context.Context, u User, candidates []User, n int) ([]TopKResult, error) {
	return s.c.TopKContext(ctx, u, candidates, n)
}

func (s *concurrentService) Cardinality(ctx context.Context, u User) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return s.c.Cardinality(u), nil
}

func (s *concurrentService) Stats(ctx context.Context) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	return s.c.Stats(), nil
}
