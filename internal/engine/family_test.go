package engine

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/hashing"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/internal/wal"
)

// fastTestConfig is testConfig under the fast hash family.
func fastTestConfig() core.Config {
	cfg := testConfig()
	cfg.Family = hashing.KindFast
	return cfg
}

// TestEngineFastFamilyParity: a sharded engine under the fast family must
// stay bit-identical to a single fast-family sketch over the same stream —
// the same exact-merge guarantee the classic family has.
func TestEngineFastFamilyParity(t *testing.T) {
	cfg := fastTestConfig()
	edges := feasibleStream(10_000, 120, 0.25, 13)
	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}
	e := MustNew(Config{Sketch: cfg, Shards: 3})
	defer e.Close()
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	assertParity(t, e, single, 40)
	if got := e.Stats().Family; got != hashing.KindFast {
		t.Errorf("engine Stats().Family = %v, want fast", got)
	}
	got, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fast-family engine serializes differently from the single sketch")
	}
}

// TestOpenRejectsFamilyMismatch: a checkpoint written under one hash
// family must refuse to load into an engine configured for the other, with
// the typed core.ErrFamilyMismatch — silently reinterpreting positions
// would XOR desynchronized state.
func TestOpenRejectsFamilyMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 2)
	cfg.Sketch.Family = hashing.KindFast
	e := MustOpen(cfg)
	if err := e.ProcessBatch(feasibleStream(500, 20, 0.2, 47)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // Close checkpoints when durable
		t.Fatal(err)
	}
	bad := durableConfig(dir, 2) // classic family
	_, err := Open(bad)
	if err == nil {
		t.Fatal("Open loaded a fast-family checkpoint into a classic engine")
	}
	if !errors.Is(err, core.ErrFamilyMismatch) {
		t.Fatalf("Open error = %v, want core.ErrFamilyMismatch in the chain", err)
	}
	// The matching family still opens.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsFamilyMismatchWindowed is the windowed-checkpoint variant
// of TestOpenRejectsFamilyMismatch.
func TestOpenRejectsFamilyMismatchWindowed(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(100, 0)}
	cfg := windowConfig(2, 4, clk)
	cfg.Sketch.Family = hashing.KindFast
	cfg.Durability = &DurabilityConfig{Dir: dir, Sync: wal.SyncEveryBatch, DisableLock: true}
	e := MustOpen(cfg)
	if err := e.ProcessBatch(feasibleStream(300, 20, 0.2, 49)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	bad := windowConfig(2, 4, clk)
	bad.Durability = &DurabilityConfig{Dir: dir, Sync: wal.SyncEveryBatch, DisableLock: true}
	_, err := Open(bad)
	if err == nil {
		t.Fatal("Open loaded a fast-family windowed checkpoint into a classic engine")
	}
	if !errors.Is(err, core.ErrFamilyMismatch) {
		t.Fatalf("Open error = %v, want core.ErrFamilyMismatch in the chain", err)
	}
}

// TestTopKApproxProbeReuse pins the repeated-probe fast path: probing the
// same user again on an unchanged snapshot reuses the recovered sketch and
// candidate set (ANNStats.ProbeReuses counts it) and returns identical
// results, while any intervening write — or a different probe user —
// invalidates the memo.
func TestTopKApproxProbeReuse(t *testing.T) {
	const mates = 8
	edges, _ := plantedClusterEdges(mates, 200, 180, 100, 4)
	e, err := New(annConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	e.Flush()

	reuses := func() uint64 {
		st, ok := e.ANNStats()
		if !ok {
			t.Fatal("ANNStats not ok")
		}
		return st.ProbeReuses
	}

	first, err := e.TopKApprox(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := reuses(); n != 0 {
		t.Fatalf("ProbeReuses = %d after first probe, want 0", n)
	}
	second, err := e.TopKApprox(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := reuses(); n != 1 {
		t.Fatalf("ProbeReuses = %d after repeated probe, want 1", n)
	}
	if len(first) != len(second) {
		t.Fatalf("repeated probe: %d results vs %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("repeated probe rank %d differs: %+v vs %+v", i, second[i], first[i])
		}
	}

	// A different probe user must not reuse user 0's memo.
	if _, err := e.TopKApprox(1, 5); err != nil {
		t.Fatal(err)
	}
	if n := reuses(); n != 1 {
		t.Fatalf("ProbeReuses = %d after probing a different user, want 1", n)
	}

	// A write invalidates the snapshot; results must be fresh — the memo
	// must not resurrect pre-write candidates or estimates.
	if err := e.Process(stream.Edge{User: 0, Item: 1 << 40, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	third, err := e.TopKApprox(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := reuses(); n != 1 {
		t.Fatalf("ProbeReuses = %d after a write, want 1 (no reuse across writes)", n)
	}
	for _, r := range third {
		if q := e.Query(0, r.User); q != r.Estimate {
			t.Fatalf("post-write estimate for %d differs from Query: %+v vs %+v", r.User, r.Estimate, q)
		}
	}
}
