package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/engine"
	"github.com/vossketch/vos/internal/gen"
	"github.com/vossketch/vos/internal/lsh"
	"github.com/vossketch/vos/internal/stream"
)

// TopKANNOptions shape the approximate-top-K experiment on top of the
// shared Options (which contribute the sketch configuration and seed).
type TopKANNOptions struct {
	// Users is the total population (heavy cluster members + background).
	Users int
	// Bands and Rows are the index's band structure (0 = the experiment
	// default of 128x20, wider and sharper than the engine's — see TopKANN).
	Bands, Rows int
	// Probes is how many cluster members are queried for the recall and
	// timing estimates.
	Probes int
	// MinRecall is the gate: mean recall@10 below this is an error, not a
	// table row.
	MinRecall float64
}

// TopKANN measures the approximate top-K path (Engine.TopKApprox over the
// banded-LSH index) against the exact scan at the paper-scale sketch
// configuration (m = 2^24, k = 6400 by default).
//
// The workload is planted so ground truth is known by construction:
// a few heavy clusters (large cardinality, high within-cluster Jaccard —
// the "users sharing most subscriptions" the paper's top-K mining targets)
// on top of a large background population of light users. Each probe's
// true top 10 is its cluster mates; the experiment reports recall@10 of
// the approximate result against the exact scan over all users, then the
// per-probe cost of both paths.
//
// Per house style a timed row is a correctness claim twice over: the run
// errors out — emitting no timing — if mean recall@10 falls below
// MinRecall, or if any approximate result is not a subset-ordered prefix
// consistent with core.RankBefore and the engine's own pairwise estimates.
func TopKANN(opts Options, ann TopKANNOptions) (*Table, error) {
	opts = opts.normalized()
	if ann.Users <= 0 {
		ann.Users = 100000
	}
	if ann.Probes <= 0 {
		ann.Probes = 24
	}
	if ann.MinRecall == 0 {
		ann.MinRecall = 0.95
	}
	// The experiment defaults to a wider, sharper band structure than the
	// engine's 64x16. Measured physics at the default 100k-user scale:
	// cluster mates agree on ~85% of their recovered bits (background load
	// in the shared 2^24-bit array costs them the ~92% they show on a
	// quiet array), while a heavy probe agrees with a light background
	// user on ~65% (mostly shared zeros). At b=128, r=20 the S-curve maps
	// that to a per-mate collision probability of ~0.99 and a per-
	// background-user probability of a few percent — recall above the
	// gate while the exact scan still scores ~30-50x more candidates.
	if ann.Bands == 0 {
		ann.Bands = 128
	}
	if ann.Rows == 0 {
		ann.Rows = 20
	}

	// The read-path configuration QueryPerf uses: 2 MiB shared array, §V
	// virtual sketch size.
	cfg := core.Config{
		MemoryBits: 1 << 24,
		SketchBits: opts.Lambda * 32 * opts.K32,
		Seed:       uint64(opts.Seed),
	}

	// Planted heavy clusters over a light background. Heavy members carry
	// enough items that their sketch bits rise above the background load
	// β — banding raw recovered bits can only separate what the bits
	// themselves separate (per-bit agreement must clear the S-curve
	// threshold (1/b)^(1/r); see the README's tuning section).
	const (
		clusters    = 8
		clusterSize = 12
		heavyCard   = 3200
		heavyJ      = 0.9
		lightCard   = 8
	)
	heavy := clusters * clusterSize
	if ann.Users <= heavy {
		return nil, fmt.Errorf("experiments: topk-ann needs more than %d users, got %d", heavy, ann.Users)
	}
	common := gen.PlantedJaccard(heavyCard, heavyJ)

	var edges []stream.Edge
	members := make([][]stream.User, clusters)
	for c := 0; c < clusters; c++ {
		members[c] = make([]stream.User, clusterSize)
		for i := range members[c] {
			members[c][i] = stream.User(c*clusterSize + i)
		}
		edges = append(edges, gen.PlantedCluster(members[c], heavyCard, common, opts.Seed+int64(c))...)
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1000))
	for u := heavy; u < ann.Users; u++ {
		for j := 0; j < lightCard; j++ {
			// Background items live above the clusters' ID ranges so they
			// never collide with a planted core.
			it := stream.Item(1<<50 + uint64(rng.Int63n(1<<40)))
			edges = append(edges, stream.Edge{User: stream.User(u), Item: it, Op: stream.Insert})
		}
	}

	eng, err := engine.New(engine.Config{
		Sketch: cfg,
		Shards: runtime.GOMAXPROCS(0),
		ANN:    &engine.ANNConfig{Bands: ann.Bands, Rows: ann.Rows},
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.ProcessBatch(edges); err != nil {
		return nil, err
	}
	eng.Flush()
	resolved := *eng.Config().ANN

	allUsers := make([]stream.User, ann.Users)
	for i := range allUsers {
		allUsers[i] = stream.User(i)
	}
	probes := make([]stream.User, ann.Probes)
	for i := range probes {
		// Round-robin across clusters so every cluster is probed.
		probes[i] = members[i%clusters][(i/clusters)%clusterSize]
	}
	const topN = 10

	// First probe pays the full index build; everything after is steady
	// state. Timed separately so the build cost is visible, not smeared.
	t0 := time.Now()
	if _, err := eng.TopKApprox(probes[0], topN); err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(t0).Nanoseconds()) / 1e6

	// Recall + correctness gate over every probe, before any timing.
	var recallSum, candSum float64
	for _, p := range probes {
		exact := eng.TopK(p, allUsers, topN)
		approx, err := eng.TopKApprox(p, topN)
		if err != nil {
			return nil, err
		}
		inExact := make(map[stream.User]struct{}, len(exact))
		for _, r := range exact {
			inExact[r.User] = struct{}{}
		}
		hits := 0
		for _, r := range approx {
			if _, ok := inExact[r.User]; ok {
				hits++
			}
		}
		recallSum += float64(hits) / float64(len(exact))
		// Subset-ordered-prefix check: ranked by the shared total order,
		// estimates identical to the engine's own pairwise answers.
		for i, r := range approx {
			if i > 0 && core.RankBefore(r, approx[i-1]) {
				return nil, fmt.Errorf("experiments: topk-ann result for %d out of order at rank %d", p, i)
			}
			if q := eng.Query(p, r.User); q != r.Estimate {
				return nil, fmt.Errorf("experiments: topk-ann estimate for (%d,%d) differs from Query", p, r.User)
			}
		}
	}
	recall := recallSum / float64(len(probes))
	if recall < ann.MinRecall {
		return nil, fmt.Errorf("experiments: topk-ann recall@%d %.4f below gate %.4f — timing withheld (a timed row is a correctness claim); retune bands/rows",
			topN, recall, ann.MinRecall)
	}

	// Candidate volume: how much of the population a probe actually scores.
	st, _ := eng.ANNStats()
	for _, p := range probes {
		cands, err := annCandidates(eng, p)
		if err != nil {
			return nil, err
		}
		candSum += float64(len(cands))
	}
	candPerProbe := candSum / float64(len(probes))

	// Timing: per-probe cost of each path, cycling the probes so neither
	// path monopolises one hot user.
	exactNS := timePerOp(2*time.Second, len(probes), func(i int) {
		topkSink = eng.TopK(probes[i], allUsers, topN)
	})
	annNS := timePerOp(2*time.Second, len(probes), func(i int) {
		topkSink, _ = eng.TopKApprox(probes[i], topN)
	})

	params := lsh.Params{Bands: resolved.Bands, Rows: resolved.Rows, Seed: resolved.Seed}
	tbl := &Table{
		ID:     "topk-ann",
		Title:  "approximate top-K: banded-LSH probe vs exact scan",
		Header: []string{"users", "bands", "rows", "recall@10", "exact ns/probe", "ann ns/probe", "speedup", "candidates/probe", "build ms"},
	}
	tbl.AddNote("workload: %d clusters x %d users (card=%d, within-cluster J=%.2f) + %d background users (card=%d)",
		clusters, clusterSize, heavyCard, heavyJ, ann.Users-heavy, lightCard)
	tbl.AddNote("sketch: m=%d bits, k=%d, seed=%d; index: b=%d r=%d (S-curve threshold %.3f)",
		cfg.MemoryBits, cfg.SketchBits, cfg.Seed, resolved.Bands, resolved.Rows, params.Threshold())
	tbl.AddNote("recall gate: mean recall@%d over %d probes must be >= %.2f (else no rows)", topN, len(probes), ann.MinRecall)
	tbl.AddNote("index: %d members, %d entries, %d rebands", st.Indexed, st.Entries, st.Rebands)
	tbl.AddRow(
		fmt.Sprintf("%d", ann.Users),
		fmt.Sprintf("%d", resolved.Bands),
		fmt.Sprintf("%d", resolved.Rows),
		fmt.Sprintf("%.4f", recall),
		fmt.Sprintf("%.0f", exactNS),
		fmt.Sprintf("%.0f", annNS),
		fmt.Sprintf("%.1fx", exactNS/annNS),
		fmt.Sprintf("%.0f", candPerProbe),
		fmt.Sprintf("%.0f", buildMS),
	)
	return tbl, nil
}

// timePerOp cycles fn(i mod n) until budget elapses (at least once) and
// returns mean ns per call.
func timePerOp(budget time.Duration, n int, fn func(i int)) float64 {
	fn(0) // warm
	reps := 0
	t0 := time.Now()
	for time.Since(t0) < budget || reps == 0 {
		fn(reps % n)
		reps++
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(reps)
}

// annCandidates reports how many candidates a probe's colliding buckets
// yield, via a throwaway TopKApprox asking for everything.
func annCandidates(eng *engine.Engine, p stream.User) ([]core.TopKResult, error) {
	return eng.TopKApprox(p, math.MaxInt32)
}
