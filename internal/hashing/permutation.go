package hashing

// Permutation is an exact pseudo-random permutation over the domain
// [0, n): a bijection, so distinct inputs always map to distinct outputs.
//
// MinHash and OPH are specified in terms of random permutations of the item
// universe (Broder et al. require min-wise independent permutations; one
// permutation hashing literally permutes [0, p)). A plain 64-bit hash is a
// fine approximation for large universes, but a true bijection removes even
// the residual collision probability and lets the small-universe unit tests
// check exact permutation properties.
//
// The construction is a balanced Feistel network over 2w bits, where
// 2w is the smallest even bit-width covering n, combined with cycle walking:
// values that land outside [0, n) are re-encrypted until they fall inside.
// A Feistel network is a bijection on its own domain, and cycle walking
// restricts a bijection to a sub-domain while preserving bijectivity, so the
// composite is a permutation of [0, n). Expected walk length is below 4
// because the Feistel domain is at most 4x the target domain.
type Permutation struct {
	n         uint64   // domain size
	halfBits  uint     // w: bits per Feistel half
	halfMask  uint64   // 2^w - 1
	roundKeys []uint64 // one derived key per Feistel round
}

// permRounds is the number of Feistel rounds. Four rounds already give a
// strong pseudo-random permutation (Luby–Rackoff); seven adds margin at
// negligible cost since this is not a cryptographic boundary.
const permRounds = 7

// NewPermutation builds a permutation of [0, n) from seed. n must be >= 1.
func NewPermutation(n uint64, seed uint64) *Permutation {
	if n == 0 {
		panic("hashing: permutation domain must be non-empty")
	}
	// Smallest w with 2^(2w) >= n; the Feistel network runs on 2w bits.
	half := uint(1)
	for half < 32 && (uint64(1)<<(2*half)) < n {
		half++
	}
	state := seed ^ 0xa2aa033b645f961b
	keys := make([]uint64, permRounds)
	for i := range keys {
		keys[i] = SplitMix64(&state)
	}
	return &Permutation{
		n:         n,
		halfBits:  half,
		halfMask:  (uint64(1) << half) - 1,
		roundKeys: keys,
	}
}

// N returns the domain size.
func (p *Permutation) N() uint64 { return p.n }

// Apply maps x through the permutation. x must be in [0, n).
func (p *Permutation) Apply(x uint64) uint64 {
	if x >= p.n {
		panic("hashing: permutation input out of domain")
	}
	y := p.encrypt(x)
	for y >= p.n {
		y = p.encrypt(y) // cycle walking: stays a bijection on [0, n)
	}
	return y
}

// Invert maps y back through the permutation. y must be in [0, n).
func (p *Permutation) Invert(y uint64) uint64 {
	if y >= p.n {
		panic("hashing: permutation input out of domain")
	}
	x := p.decrypt(y)
	for x >= p.n {
		x = p.decrypt(x)
	}
	return x
}

func (p *Permutation) encrypt(x uint64) uint64 {
	l := x >> p.halfBits
	r := x & p.halfMask
	for i := 0; i < permRounds; i++ {
		l, r = r, l^(Hash64(r, p.roundKeys[i])&p.halfMask)
	}
	return l<<p.halfBits | r
}

func (p *Permutation) decrypt(y uint64) uint64 {
	l := y >> p.halfBits
	r := y & p.halfMask
	for i := permRounds - 1; i >= 0; i-- {
		l, r = r^(Hash64(l, p.roundKeys[i])&p.halfMask), l
	}
	return l<<p.halfBits | r
}
