// Package similarity defines the common interface every similarity
// estimation method in this repository implements, the paper's §V
// memory-equalisation model, and a factory that builds all four competing
// methods (VOS, MinHash, OPH, RP) plus the exact oracle with the same
// memory budget, exactly as the evaluation requires.
package similarity

import (
	"fmt"
	"sort"
	"strings"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/exact"
	"github.com/vossketch/vos/internal/minhash"
	"github.com/vossketch/vos/internal/oph"
	"github.com/vossketch/vos/internal/rp"
	"github.com/vossketch/vos/internal/stream"
)

// Estimator is a streaming user-similarity estimator: it consumes stream
// elements one at a time and answers pairwise queries at any point.
type Estimator interface {
	// Name identifies the method ("VOS", "MinHash", "OPH", "RP", "Exact").
	Name() string
	// Process folds one stream element into the estimator's state.
	Process(e stream.Edge)
	// EstimateCommonItems returns ŝ_uv.
	EstimateCommonItems(u, v stream.User) float64
	// EstimateJaccard returns Ĵ(S_u, S_v) in [0, 1].
	EstimateJaccard(u, v stream.User) float64
	// Cardinality returns the tracked n_u.
	Cardinality(u stream.User) int64
}

// Budget is the §V memory model: every method gets m = 32·K32·Users bits
// in total, the cost of giving each of Users users K32 registers of 32
// bits (the baselines' layout). VOS spends the same bits on one shared
// array and virtualises per-user sketches of Lambda·32·K32 bits over it.
type Budget struct {
	// K32 is the register count per user for MinHash/OPH/RP (the paper's
	// k; 100 in the accuracy experiments).
	K32 int
	// Users is |U|, the number of users the budget provisions for.
	Users int
	// Lambda is the VOS virtual-sketch multiplier (the paper's λ; 2 in
	// §V): VOS's k = Lambda·32·K32.
	Lambda int
}

// TotalBits returns m = 32·K32·Users.
func (b Budget) TotalBits() uint64 {
	return 32 * uint64(b.K32) * uint64(b.Users)
}

// VOSSketchBits returns VOS's virtual sketch size k = Lambda·32·K32.
func (b Budget) VOSSketchBits() int {
	return b.Lambda * 32 * b.K32
}

func (b Budget) validate() error {
	if b.K32 <= 0 || b.Users <= 0 || b.Lambda <= 0 {
		return fmt.Errorf("similarity: budget fields must be positive: %+v", b)
	}
	return nil
}

// Method names accepted by New.
const (
	MethodVOS     = "VOS"
	MethodMinHash = "MinHash"
	MethodOPH     = "OPH"
	MethodRP      = "RP"
	MethodExact   = "Exact"
)

// Methods lists the four sketch methods in the paper's plotting order.
var Methods = []string{MethodMinHash, MethodOPH, MethodRP, MethodVOS}

// New builds an estimator of the given method under the budget.
func New(method string, b Budget, seed uint64) (Estimator, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	switch strings.ToLower(method) {
	case "vos":
		v, err := core.New(core.Config{
			MemoryBits: b.TotalBits(),
			SketchBits: b.VOSSketchBits(),
			Seed:       seed,
		})
		if err != nil {
			return nil, err
		}
		return &vosAdapter{v}, nil
	case "minhash":
		return &minhashAdapter{minhash.New(b.K32, seed)}, nil
	case "oph":
		return &ophAdapter{oph.New(b.K32, seed)}, nil
	case "rp":
		return &rpAdapter{rp.New(b.K32, seed)}, nil
	case "exact":
		return NewExact(), nil
	default:
		return nil, fmt.Errorf("similarity: unknown method %q (want one of %s, Exact)",
			method, strings.Join(Methods, ", "))
	}
}

// MustNew is New for static configurations; it panics on error.
func MustNew(method string, b Budget, seed uint64) Estimator {
	e, err := New(method, b, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// NewAll builds one estimator per sketch method (no exact oracle), in the
// paper's plotting order, all under the same budget and seed.
func NewAll(b Budget, seed uint64) ([]Estimator, error) {
	out := make([]Estimator, 0, len(Methods))
	for _, m := range Methods {
		e, err := New(m, b, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

type vosAdapter struct{ v *core.VOS }

func (a *vosAdapter) Name() string          { return MethodVOS }
func (a *vosAdapter) Process(e stream.Edge) { a.v.Process(e) }
func (a *vosAdapter) EstimateCommonItems(u, v stream.User) float64 {
	return a.v.EstimateCommonItems(u, v)
}
func (a *vosAdapter) EstimateJaccard(u, v stream.User) float64 {
	return a.v.EstimateJaccard(u, v)
}
func (a *vosAdapter) Cardinality(u stream.User) int64 { return a.v.Cardinality(u) }

// VOS unwraps the underlying core sketch (for diagnostics such as β).
func (a *vosAdapter) VOS() *core.VOS { return a.v }

type minhashAdapter struct{ s *minhash.Sketch }

func (a *minhashAdapter) Name() string          { return MethodMinHash }
func (a *minhashAdapter) Process(e stream.Edge) { a.s.Process(e) }
func (a *minhashAdapter) EstimateCommonItems(u, v stream.User) float64 {
	return a.s.EstimateCommonItems(u, v)
}
func (a *minhashAdapter) EstimateJaccard(u, v stream.User) float64 {
	return a.s.EstimateJaccard(u, v)
}
func (a *minhashAdapter) Cardinality(u stream.User) int64 { return a.s.Cardinality(u) }

type ophAdapter struct{ s *oph.Sketch }

func (a *ophAdapter) Name() string          { return MethodOPH }
func (a *ophAdapter) Process(e stream.Edge) { a.s.Process(e) }
func (a *ophAdapter) EstimateCommonItems(u, v stream.User) float64 {
	return a.s.EstimateCommonItems(u, v)
}
func (a *ophAdapter) EstimateJaccard(u, v stream.User) float64 {
	return a.s.EstimateJaccard(u, v)
}
func (a *ophAdapter) Cardinality(u stream.User) int64 { return a.s.Cardinality(u) }

type rpAdapter struct{ s *rp.Sketch }

func (a *rpAdapter) Name() string          { return MethodRP }
func (a *rpAdapter) Process(e stream.Edge) { a.s.Process(e) }
func (a *rpAdapter) EstimateCommonItems(u, v stream.User) float64 {
	return a.s.EstimateCommonItems(u, v)
}
func (a *rpAdapter) EstimateJaccard(u, v stream.User) float64 {
	return a.s.EstimateJaccard(u, v)
}
func (a *rpAdapter) Cardinality(u stream.User) int64 { return a.s.Cardinality(u) }

// Exact is the ground-truth oracle behind the Estimator interface. Its
// "estimates" are exact values; it exists so harness code can treat truth
// and sketches uniformly and so examples can sanity-check sketch output.
type Exact struct{ store *exact.Store }

// NewExact creates an exact oracle.
func NewExact() *Exact { return &Exact{store: exact.NewStore()} }

// Name implements Estimator.
func (x *Exact) Name() string { return MethodExact }

// Process implements Estimator; infeasible elements panic, because the
// oracle's correctness contract is a feasible stream.
func (x *Exact) Process(e stream.Edge) { x.store.MustApply(e) }

// EstimateCommonItems returns the exact s_uv.
func (x *Exact) EstimateCommonItems(u, v stream.User) float64 {
	return float64(x.store.CommonItems(u, v))
}

// EstimateJaccard returns the exact J.
func (x *Exact) EstimateJaccard(u, v stream.User) float64 {
	return x.store.Jaccard(u, v)
}

// Cardinality returns the exact |S_u|.
func (x *Exact) Cardinality(u stream.User) int64 {
	return int64(x.store.Cardinality(u))
}

// Store exposes the underlying exact store.
func (x *Exact) Store() *exact.Store { return x.store }

// BatchJaccard is the optional fast path for one-against-many queries:
// estimators that can amortise per-query setup (VOS recovers the query
// user's virtual sketch once) implement it, and TopSimilar uses it
// automatically. Results must equal per-pair EstimateJaccard calls.
type BatchJaccard interface {
	EstimateJaccardMany(u stream.User, candidates []stream.User) []float64
}

// EstimateJaccardMany implements BatchJaccard on the VOS adapter via the
// core batch path.
func (a *vosAdapter) EstimateJaccardMany(u stream.User, candidates []stream.User) []float64 {
	ests := a.v.QueryMany(u, candidates)
	out := make([]float64, len(ests))
	for i, e := range ests {
		out[i] = e.Jaccard
	}
	return out
}

// TopKer is the optional native top-K fast path: estimators that can rank
// candidates without materialising every score (VOS recovers the probe
// user's packed sketch once and keeps a bounded min-heap) implement it,
// and TopSimilar uses it automatically. The returned ranking must equal
// sorting per-pair EstimateJaccard results descending with ties broken by
// user ID, u excluded.
type TopKer interface {
	TopSimilarUsers(u stream.User, candidates []stream.User, n int) []stream.User
}

// TopSimilarUsers implements TopKer on the VOS adapter via the core
// materialized top-K path.
func (a *vosAdapter) TopSimilarUsers(u stream.User, candidates []stream.User, n int) []stream.User {
	top := a.v.TopK(u, candidates, n)
	out := make([]stream.User, len(top))
	for i, r := range top {
		out[i] = r.User
	}
	return out
}

// TopSimilar returns, for an estimator and a candidate user set, the n
// users most similar to u by estimated Jaccard, descending (ties broken by
// user ID). The building block of the "similar users" examples. Estimators
// implementing TopKer rank through the native heap path; BatchJaccard
// estimators are queried through the batch fast path.
func TopSimilar(est Estimator, u stream.User, candidates []stream.User, n int) []stream.User {
	if tk, ok := est.(TopKer); ok {
		return tk.TopSimilarUsers(u, candidates, n)
	}
	type scored struct {
		user stream.User
		j    float64
	}
	xs := make([]scored, 0, len(candidates))
	if batch, ok := est.(BatchJaccard); ok {
		others := make([]stream.User, 0, len(candidates))
		for _, c := range candidates {
			if c != u {
				others = append(others, c)
			}
		}
		for i, j := range batch.EstimateJaccardMany(u, others) {
			xs = append(xs, scored{user: others[i], j: j})
		}
	} else {
		for _, c := range candidates {
			if c == u {
				continue
			}
			xs = append(xs, scored{user: c, j: est.EstimateJaccard(u, c)})
		}
	}
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].j != xs[j].j {
			return xs[i].j > xs[j].j
		}
		return xs[i].user < xs[j].user
	})
	if n > len(xs) {
		n = len(xs)
	}
	out := make([]stream.User, n)
	for i := 0; i < n; i++ {
		out[i] = xs[i].user
	}
	return out
}
