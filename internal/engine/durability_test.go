package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/internal/wal"
)

// durableConfig builds a durable engine config over dir with small WAL
// segments so rotation and truncation paths are exercised. The directory
// flock is disabled: these tests simulate crashes by abandoning an engine
// in-process, which cannot release the lock the way a real process death
// does.
func durableConfig(dir string, shards int) Config {
	return Config{
		Sketch: testConfig(),
		Shards: shards,
		Durability: &DurabilityConfig{
			Dir:          dir,
			Sync:         wal.SyncEveryBatch,
			SegmentBytes: 16 << 10,
			DisableLock:  true,
		},
	}
}

// TestSecondOpenOnLiveDirFails: with locking on (the default), a second
// engine on the same directory must fail fast rather than corrupt the WAL.
func TestSecondOpenOnLiveDirFails(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("directory flock is a no-op off unix")
	}
	dir := t.TempDir()
	cfg := durableConfig(dir, 1)
	cfg.Durability.DisableLock = false
	e := MustOpen(cfg)
	if _, err := Open(cfg); err == nil {
		t.Fatal("second Open on a live directory succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Released on Close: the directory is reusable.
	e2 := MustOpen(cfg)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
}

// assertParity checks that the engine's estimates, cardinalities and merged
// stats are bit-identical to the single reference sketch.
func assertParity(t *testing.T, e *Engine, single *core.VOS, users int) {
	t.Helper()
	if st, est := single.Stats(), e.Stats(); st != est {
		t.Fatalf("merged stats diverge: single %+v vs engine %+v", st, est)
	}
	for u := stream.User(0); u < stream.User(users); u++ {
		for v := u + 1; v < stream.User(users); v += 7 {
			if got, want := e.Query(u, v), single.Query(u, v); got != want {
				t.Fatalf("Query(%d,%d) = %+v, single sketch %+v", u, v, got, want)
			}
		}
		if got, want := e.Cardinality(u), single.Cardinality(u); got != want {
			t.Fatalf("Cardinality(%d) = %d, want %d", u, got, want)
		}
	}
}

// TestCrashRecoveryParity is the kill-and-recover guarantee: ingest half a
// planted insert+delete stream, hard-stop the engine mid-stream (no Flush,
// no Close — the process just "dies"), reopen from disk, finish the
// stream, and verify the recovered engine's estimates are bit-identical to
// an uninterrupted single-sketch run over the whole stream.
func TestCrashRecoveryParity(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(16_000, 120, 0.3, 17)
	half := len(edges) / 2

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}

	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()

			// Phase 1: ingest the first half, then crash. SyncEveryBatch
			// means every acknowledged edge is on disk; the engine is
			// abandoned with queues possibly non-empty and no checkpoint.
			crashed := MustOpen(durableConfig(dir, shards))
			for i := 0; i < half; i += 100 {
				end := i + 100
				if end > half {
					end = half
				}
				if err := crashed.ProcessBatch(edges[i:end]); err != nil {
					t.Fatal(err)
				}
			}
			// No Flush, no Close: hard stop.

			// Phase 2: recover and finish the stream.
			e := MustOpen(durableConfig(dir, shards))
			defer e.Close()
			if err := e.ProcessBatch(edges[half:]); err != nil {
				t.Fatal(err)
			}
			e.Flush()
			assertParity(t, e, single, 40)

			// The serialized recovered engine is byte-identical to the
			// uninterrupted sketch, the strongest form of parity.
			got, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			want, err := single.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("recovered engine serializes differently from the uninterrupted sketch")
			}
		})
	}
}

// TestCheckpointThenCrashReplaysOnlySuffix: a checkpoint mid-stream plus a
// crash leaves a base sketch and a WAL suffix; recovery must stitch them
// back together exactly, and the truncated prefix segments must be gone.
func TestCheckpointThenCrashReplaysOnlySuffix(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(12_000, 100, 0.25, 23)
	dir := t.TempDir()

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}

	crashed := MustOpen(durableConfig(dir, 2))
	third := len(edges) / 3
	if err := crashed.ProcessBatch(edges[:third]); err != nil {
		t.Fatal(err)
	}
	pos, err := crashed.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if pos != uint64(third) {
		t.Fatalf("checkpoint position %d, want %d", pos, third)
	}
	if err := crashed.ProcessBatch(edges[third : 2*third]); err != nil {
		t.Fatal(err)
	}
	// Hard stop (no Close).

	// The checkpoint must have truncated fully covered segments.
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0] == 0 {
		t.Fatalf("WAL prefix not truncated after checkpoint: segments %v", segs)
	}

	e := MustOpen(durableConfig(dir, 2))
	defer e.Close()
	// A recovered engine answers from base+shards; the local fast path
	// would miss base parity bits and must disable itself.
	if _, err := e.QueryLocal(1, 2); !errors.Is(err, ErrQueryUnavailable) {
		t.Fatalf("QueryLocal on a checkpoint-recovered engine: want ErrQueryUnavailable, got %v", err)
	}
	if err := e.ProcessBatch(edges[2*third:]); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	assertParity(t, e, single, 40)
}

// TestFallbackToOlderCheckpoint: the newest checkpoint file bit-rots; the
// retained predecessor plus its surviving WAL suffix must recover the full
// state — this is what the keep-two retention and the keep-the-older-
// checkpoint's-segments truncation policy exist for.
func TestFallbackToOlderCheckpoint(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(9_000, 90, 0.25, 53)
	third := len(edges) / 3
	dir := t.TempDir()

	e := MustOpen(durableConfig(dir, 2))
	if err := e.ProcessBatch(edges[:third]); err != nil {
		t.Fatal(err)
	}
	p1, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessBatch(edges[third : 2*third]); err != nil {
		t.Fatal(err)
	}
	p2, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessBatch(edges[2*third:]); err != nil {
		t.Fatal(err)
	}
	// Hard stop, then rot the newest checkpoint.
	path := wal.CheckpointPath(dir, p2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The WAL suffix past p1 must still exist for the fallback to cover.
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 || segs[0] > p1 {
		t.Fatalf("WAL suffix of the older checkpoint was truncated: segments %v, p1=%d", segs, p1)
	}

	recovered := MustOpen(durableConfig(dir, 2))
	defer recovered.Close()
	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}
	assertParity(t, recovered, single, 30)
}

// TestCloseCheckpointsAndReopensCold: graceful Close writes a final
// checkpoint, so the next Open replays nothing and still matches.
func TestCloseCheckpointsAndReopensCold(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(8_000, 80, 0.25, 31)
	dir := t.TempDir()

	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}

	first := MustOpen(durableConfig(dir, 4))
	if err := first.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	pos, _, found, err := wal.LatestCheckpoint(dir)
	if err != nil || !found {
		t.Fatalf("no checkpoint after Close: found=%v err=%v", found, err)
	}
	if pos != uint64(len(edges)) {
		t.Fatalf("final checkpoint at %d, want %d", pos, len(edges))
	}

	e := MustOpen(durableConfig(dir, 4))
	defer e.Close()
	assertParity(t, e, single, 30)

	// Ingest continues seamlessly after a cold reopen.
	extra := stream.Edge{User: 1, Item: 999_999, Op: stream.Insert}
	if err := e.Process(extra); err != nil {
		t.Fatal(err)
	}
	single.Process(extra)
	e.Flush()
	if got, want := e.Cardinality(1), single.Cardinality(1); got != want {
		t.Fatalf("post-reopen Cardinality = %d, want %d", got, want)
	}
}

// TestCheckpointConcurrentWithProducers checkpoints repeatedly while
// producers ingest: no batch may straddle a checkpoint, so the final state
// must still be bit-identical to the reference.
func TestCheckpointConcurrentWithProducers(t *testing.T) {
	cfg := testConfig()
	edges := feasibleStream(20_000, 120, 0.25, 37)
	dir := t.TempDir()
	e := MustOpen(durableConfig(dir, 3))

	const producers = 4
	per := len(edges) / producers
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(chunk []stream.Edge) {
			defer wg.Done()
			for len(chunk) > 0 {
				n := 64
				if n > len(chunk) {
					n = len(chunk)
				}
				if err := e.ProcessBatch(chunk[:n]); err != nil {
					t.Error(err)
					return
				}
				chunk = chunk[n:]
			}
		}(edges[p*per : (p+1)*per])
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if _, err := e.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	single := core.MustNew(cfg)
	for _, ed := range edges[:per*producers] {
		single.Process(ed)
	}
	recovered := MustOpen(durableConfig(dir, 3))
	defer recovered.Close()
	assertParity(t, recovered, single, 30)
}

// TestMarshalBinaryNeverStale pins the flush-then-merge contract: even
// with a huge SnapshotMaxLag (under which Query may legitimately answer
// stale), MarshalBinary covers every acknowledged write.
func TestMarshalBinaryNeverStale(t *testing.T) {
	cfg := testConfig()
	e := MustNew(Config{Sketch: cfg, Shards: 2, SnapshotMaxLag: 1 << 62})
	defer e.Close()
	edges := feasibleStream(2_000, 40, 0.2, 41)
	half := len(edges) / 2

	if err := e.ProcessBatch(edges[:half]); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	_ = e.Query(1, 2) // build a snapshot that SnapshotMaxLag will pin stale

	if err := e.ProcessBatch(edges[half:]); err != nil {
		t.Fatal(err)
	}
	// No explicit Flush: MarshalBinary must flush and re-merge itself.
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.UnmarshalVOS(data)
	if err != nil {
		t.Fatal(err)
	}
	single := core.MustNew(cfg)
	for _, ed := range edges {
		single.Process(ed)
	}
	if restored.Stats() != single.Stats() {
		t.Fatalf("marshal is behind acknowledged writes: %+v vs %+v", restored.Stats(), single.Stats())
	}
	if got, want := restored.Query(3, 9), single.Query(3, 9); got != want {
		t.Fatalf("restored Query = %+v, want %+v", got, want)
	}
}

// TestOpenRejectsMismatchedCheckpoint: recovering with a different sketch
// config must fail loudly, not silently merge incompatible state.
func TestOpenRejectsMismatchedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := MustOpen(durableConfig(dir, 2))
	if err := e.ProcessBatch(feasibleStream(500, 20, 0.2, 43)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	bad := durableConfig(dir, 2)
	bad.Sketch.SketchBits *= 2
	if _, err := Open(bad); err == nil {
		t.Fatal("Open accepted a checkpoint from a different sketch config")
	}
}

// TestOpenRequiresDir: Open without a durability directory is an error,
// and Checkpoint on a memory-only engine reports ErrNoDurability.
func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{Sketch: testConfig()}); err != ErrNoDurability {
		t.Fatalf("Open without dir = %v, want ErrNoDurability", err)
	}
	e := MustNew(Config{Sketch: testConfig(), Shards: 1})
	defer e.Close()
	if _, err := e.Checkpoint(); err != ErrNoDurability {
		t.Fatalf("Checkpoint on memory-only engine = %v, want ErrNoDurability", err)
	}
}

// TestNewWithDurabilityDelegatesToOpen: New on a durability config behaves
// like Open, including recovery of prior state.
func TestNewWithDurabilityDelegatesToOpen(t *testing.T) {
	dir := t.TempDir()
	e, err := New(durableConfig(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Process(stream.Edge{User: 5, Item: 6, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := New(durableConfig(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Cardinality(5); got != 1 {
		t.Fatalf("recovered Cardinality = %d, want 1", got)
	}
}

// TestTornWALTailRecovered: bytes of a half-written record at the WAL tail
// (the crash artifact CRC framing exists to catch) must be discarded on
// recovery, not break it.
func TestTornWALTailRecovered(t *testing.T) {
	dir := t.TempDir()
	e := MustOpen(durableConfig(dir, 2))
	edges := feasibleStream(1_000, 30, 0.2, 47)
	if err := e.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	// Hard stop, then corrupt the tail the way a torn write would.
	segs, err := wal.ListSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v err %v", segs, err)
	}
	last := segs[len(segs)-1]
	appendBytes(t, wal.SegmentPath(dir, last), []byte{42, 0, 0, 0, 7})

	recovered := MustOpen(durableConfig(dir, 2))
	defer recovered.Close()
	single := core.MustNew(testConfig())
	for _, ed := range edges {
		single.Process(ed)
	}
	assertParity(t, recovered, single, 20)
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}
