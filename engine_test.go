package vos_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/vossketch/vos"
)

// engineTestStream builds a feasible insert+delete stream.
func engineTestStream(n, users int, delFrac float64, seed int64) []vos.Edge {
	rng := rand.New(rand.NewSource(seed))
	type key struct {
		u vos.User
		i vos.Item
	}
	liveList := make([]key, 0, n)
	liveIdx := make(map[key]int, n)
	out := make([]vos.Edge, 0, n)
	for len(out) < n {
		if len(liveList) > 0 && rng.Float64() < delFrac {
			pos := rng.Intn(len(liveList))
			k := liveList[pos]
			last := len(liveList) - 1
			liveList[pos] = liveList[last]
			liveIdx[liveList[pos]] = pos
			liveList = liveList[:last]
			delete(liveIdx, k)
			out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Delete})
			continue
		}
		k := key{vos.User(rng.Intn(users)), vos.Item(rng.Uint64() % 100_000)}
		if _, dup := liveIdx[k]; dup {
			continue
		}
		liveIdx[k] = len(liveList)
		liveList = append(liveList, k)
		out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Insert})
	}
	return out
}

// TestEngineAccuracyParity is the public-API form of the sharding
// guarantee: a K-shard Engine returns identical estimates to a single
// Sketch over the same insert+delete stream.
func TestEngineAccuracyParity(t *testing.T) {
	cfg := vos.Config{MemoryBits: 1 << 19, SketchBits: 1024, Seed: 13}
	edges := engineTestStream(30_000, 300, 0.3, 4)

	single := vos.MustNew(cfg)
	for _, e := range edges {
		single.Process(e)
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			eng := vos.MustNewEngine(vos.EngineConfig{Sketch: cfg, Shards: shards})
			defer eng.Close()
			if err := eng.ProcessBatch(edges); err != nil {
				t.Fatal(err)
			}
			eng.Flush()
			for u := vos.User(0); u < 30; u++ {
				for v := u + 1; v < 30; v += 5 {
					if got, want := eng.Query(u, v), single.Query(u, v); got != want {
						t.Fatalf("engine Query(%d,%d) = %+v, single sketch %+v", u, v, got, want)
					}
				}
			}
		})
	}
}
