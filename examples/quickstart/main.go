// Quickstart: the smallest useful VOS program.
//
// It builds a sketch, streams subscriptions and unsubscriptions for two
// users, and queries their similarity — comparing against the exact values
// so you can see what the estimate buys and what it costs.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/vossketch/vos"
)

func main() {
	// A sketch needs three numbers:
	//   MemoryBits — the shared bit array size m; bigger means less
	//                cross-user contamination (lower β).
	//   SketchBits — the virtual per-user odd sketch size k; bigger
	//                means finer similarity resolution, O(k) query cost.
	//   Seed       — reproducibility; sketches built with the same seed
	//                from the same stream are bit-identical.
	sk := vos.MustNew(vos.Config{
		MemoryBits: 1 << 22, // 4 Mbit = 512 KiB
		SketchBits: 4096,
		Seed:       42,
	})

	alice := vos.UserFromString("alice")
	bob := vos.UserFromString("bob")

	// The exact oracle tracks ground truth so the demo can show the
	// estimation error; a real deployment would not (that is the point
	// of sketching).
	truth := vos.NewExact()

	process := func(e vos.Edge) {
		sk.Process(e) // O(1): one hash, one bit flip
		truth.Process(e)
	}

	// Alice subscribes to channels 0-199, Bob to 100-299: they share
	// channels 100-199.
	for i := 0; i < 200; i++ {
		process(vos.Edge{User: alice, Item: vos.Item(i), Op: vos.Insert})
	}
	for i := 100; i < 300; i++ {
		process(vos.Edge{User: bob, Item: vos.Item(i), Op: vos.Insert})
	}

	fmt.Println("after subscriptions:")
	report(sk, truth, alice, bob)

	// Alice unsubscribes channels 100-149 — precisely the situation
	// where MinHash-style sketches go wrong and VOS does not: deletions
	// are XOR toggles that cancel the earlier insertions exactly.
	for i := 100; i < 150; i++ {
		process(vos.Edge{User: alice, Item: vos.Item(i), Op: vos.Delete})
	}

	fmt.Println("\nafter alice unsubscribes 50 shared channels:")
	report(sk, truth, alice, bob)

	st := sk.Stats()
	fmt.Printf("\nsketch state: m = %d bits, k = %d, β = %.4f, %d users\n",
		st.MemoryBits, st.SketchBits, st.Beta, st.Users)
}

func report(sk *vos.Sketch, truth vos.Estimator, a, b vos.User) {
	est := sk.Query(a, b)
	fmt.Printf("  common items:  estimated %6.1f   exact %3.0f\n",
		est.Common, truth.EstimateCommonItems(a, b))
	fmt.Printf("  jaccard:       estimated %6.3f   exact %.3f\n",
		est.Jaccard, truth.EstimateJaccard(a, b))
}
