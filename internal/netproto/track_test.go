package netproto

import (
	"math"
	"testing"
)

func TestTrackerInOrder(t *testing.T) {
	trk := NewTracker(0)
	for seq := uint64(0); seq < 200; seq++ {
		if v := trk.Observe(1, seq); v != VerdictApply {
			t.Fatalf("seq %d: verdict %d, want apply", seq, v)
		}
	}
	s, ok := trk.Session(1)
	if !ok {
		t.Fatal("session 1 missing")
	}
	if s.Applied != 200 || s.Gaps != 0 || s.Replays != 0 || s.Late != 0 || s.Stale != 0 || s.Highest != 199 {
		t.Fatalf("counters after clean run: %+v", s)
	}
}

func TestTrackerImmediateReplay(t *testing.T) {
	trk := NewTracker(0)
	trk.Observe(1, 5)
	if v := trk.Observe(1, 5); v != VerdictReplay {
		t.Fatalf("duplicate of current highest: verdict %d, want replay", v)
	}
}

func TestTrackerGapConfirmedWhenWindowSlides(t *testing.T) {
	trk := NewTracker(0)
	trk.Observe(1, 0)
	trk.Observe(1, 2) // 1 missing, still inside the window — not yet a gap
	if s, _ := trk.Session(1); s.Gaps != 0 {
		t.Fatalf("gap confirmed too early: %+v", s)
	}
	// Jump far enough that seq 1's bit slides out of the 64-wide window.
	// Exactly one gap confirms: seq 1. The sequences between 3 and 66 are
	// still pending zero bits in the new window, and the pre-session
	// positions below seq 0 must never be counted.
	trk.Observe(1, 2+WindowSize)
	s, _ := trk.Session(1)
	if s.Gaps != 1 {
		t.Fatalf("gaps = %d, want 1: %+v", s.Gaps, s)
	}
	if s.Applied != 3 {
		t.Fatalf("applied = %d, want 3", s.Applied)
	}
}

func TestTrackerHugeJumpCountsAllMissing(t *testing.T) {
	trk := NewTracker(0)
	trk.Observe(1, 0)
	// Jumping 0 → 1000 confirms the missing sequences that don't even
	// land in the new window (999 missing total, the newest 63 still
	// pending as window zero bits).
	trk.Observe(1, 1000)
	s, _ := trk.Session(1)
	if s.Gaps != 999-63 {
		t.Fatalf("gaps = %d, want %d", s.Gaps, 999-63)
	}
	// One more window-length jump slides those 63 pending holes out too.
	trk.Observe(1, 1000+WindowSize)
	if s, _ := trk.Session(1); s.Gaps != 999 {
		t.Fatalf("gaps = %d, want 999 after pending holes confirm", s.Gaps)
	}
}

func TestTrackerLateArrivalAppliesOnce(t *testing.T) {
	trk := NewTracker(0)
	trk.Observe(1, 0)
	trk.Observe(1, 2)
	// Seq 1 arrives late but inside the window: applied, counted Late.
	if v := trk.Observe(1, 1); v != VerdictApply {
		t.Fatalf("late original: verdict %d, want apply", v)
	}
	s, _ := trk.Session(1)
	if s.Late != 1 || s.Applied != 3 {
		t.Fatalf("after late arrival: %+v", s)
	}
	// Duplicate-after-gap: the same seq again must be recognized as a
	// replay even though it was never the highest.
	if v := trk.Observe(1, 1); v != VerdictReplay {
		t.Fatalf("duplicate after gap-fill: verdict %d, want replay", v)
	}
	if s, _ := trk.Session(1); s.Replays != 1 || s.Applied != 3 {
		t.Fatalf("after duplicate: %+v", s)
	}
}

func TestTrackerStaleDrop(t *testing.T) {
	trk := NewTracker(0)
	trk.Observe(1, 0)
	trk.Observe(1, 500)
	if v := trk.Observe(1, 400); v != VerdictStale {
		t.Fatalf("frame older than window: verdict %d, want stale", v)
	}
	if s, _ := trk.Session(1); s.Stale != 1 {
		t.Fatalf("stale not counted: %+v", s)
	}
}

func TestTrackerWraparound(t *testing.T) {
	trk := NewTracker(0)
	start := uint64(math.MaxUint64 - 2)
	// Sequence ...fffd, ...fffe, ...ffff, 0, 1, 2 — straight through wrap.
	for i := uint64(0); i < 6; i++ {
		seq := start + i // wraps
		if v := trk.Observe(7, seq); v != VerdictApply {
			t.Fatalf("wrap step %d (seq %d): verdict %d, want apply", i, seq, v)
		}
	}
	s, _ := trk.Session(7)
	if s.Gaps != 0 || s.Replays != 0 || s.Applied != 6 {
		t.Fatalf("wraparound counters: %+v", s)
	}
	if s.Highest != 2 {
		t.Fatalf("highest after wrap = %d, want 2", s.Highest)
	}
	// A pre-wrap duplicate must still read as a replay, not as far-future.
	if v := trk.Observe(7, math.MaxUint64); v != VerdictReplay {
		t.Fatalf("pre-wrap duplicate: verdict %d, want replay", v)
	}
}

func TestTrackerSessionRestart(t *testing.T) {
	trk := NewTracker(0)
	for seq := uint64(0); seq < 1000; seq++ {
		trk.Observe(9, seq)
	}
	// A sender restarting with the SAME session id restarts its sequence at
	// 0 — far below the window, indistinguishable from ancient replays, so
	// every frame drops as stale. This is the designed failure mode; the
	// remedy is a fresh session id.
	if v := trk.Observe(9, 0); v != VerdictStale {
		t.Fatalf("same-id restart: verdict %d, want stale", v)
	}
	// A fresh session id works immediately.
	if v := trk.Observe(10, 0); v != VerdictApply {
		t.Fatalf("fresh-id restart: verdict %d, want apply", v)
	}
}

func TestTrackerEvictionFoldsTotals(t *testing.T) {
	trk := NewTracker(2)
	trk.Observe(1, 0)
	trk.Observe(1, 2) // pending hole at seq 1
	trk.Observe(2, 0)
	trk.Observe(3, 0) // evicts session 1 (least recently active)
	if trk.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", trk.Sessions())
	}
	if trk.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", trk.Evicted())
	}
	if _, ok := trk.Session(1); ok {
		t.Fatal("session 1 still live after eviction")
	}
	tot := trk.Totals()
	if tot.Applied != 4 {
		t.Fatalf("totals.Applied = %d, want 4 (evicted counters folded in)", tot.Applied)
	}
	// The evicted sender reappearing restarts from its next frame.
	if v := trk.Observe(1, 3); v != VerdictApply {
		t.Fatalf("post-eviction frame: verdict %d, want apply", v)
	}
}

func TestTrackerAckFor(t *testing.T) {
	trk := NewTracker(0)
	trk.Observe(4, 0)
	trk.Observe(4, 2)
	trk.Observe(4, 2) // replay
	a := trk.AckFor(4, 2)
	if a.Session != 4 || a.EchoSeq != 2 || a.Highest != 2 || a.Applied != 2 || a.Replays != 1 || a.Gaps != 0 {
		t.Fatalf("ack: %+v", a)
	}
	if a := trk.AckFor(999, 1); a.Applied != 0 || a.Highest != 0 {
		t.Fatalf("unknown-session ack not zeroed: %+v", a)
	}
}
