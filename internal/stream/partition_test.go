package stream

import (
	"testing"
	"testing/quick"
)

func makeFeasible(users, items []uint8) []Edge {
	// Builds a feasible stream: insert each unique (u, i) once, then
	// delete a deterministic subset.
	var out []Edge
	seen := map[[2]uint8]bool{}
	n := len(users)
	if len(items) < n {
		n = len(items)
	}
	for idx := 0; idx < n; idx++ {
		key := [2]uint8{users[idx], items[idx]}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Edge{User: User(users[idx]), Item: Item(items[idx]), Op: Insert})
	}
	for idx, e := range out {
		if idx%3 == 0 {
			out = append(out, Edge{User: e.User, Item: e.Item, Op: Delete})
		}
	}
	return out
}

func TestPartitionByUserShardsFeasible(t *testing.T) {
	err := quick.Check(func(users, items []uint8) bool {
		edges := makeFeasible(users, items)
		shards := PartitionByUser(edges, 4, 9)
		total := 0
		for _, s := range shards {
			if Validate(s) != nil {
				return false
			}
			total += len(s)
		}
		return total == len(edges)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestPartitionByUserConsistent(t *testing.T) {
	edges := makeFeasible([]uint8{1, 2, 3, 1, 2, 3, 4}, []uint8{1, 2, 3, 4, 5, 6, 7})
	shards := PartitionByUser(edges, 3, 5)
	owner := map[User]int{}
	for si, shard := range shards {
		for _, e := range shard {
			if prev, ok := owner[e.User]; ok && prev != si {
				t.Fatalf("user %d in shards %d and %d", e.User, prev, si)
			}
			owner[e.User] = si
		}
	}
}

func TestPartitionPreservesPerShardOrder(t *testing.T) {
	edges := []Edge{
		{1, 10, Insert}, {1, 11, Insert}, {1, 10, Delete},
	}
	shards := PartitionByUser(edges, 2, 1)
	var shard []Edge
	for _, s := range shards {
		if len(s) > 0 {
			shard = s
		}
	}
	if len(shard) != 3 || shard[0] != edges[0] || shard[2] != edges[2] {
		t.Errorf("order not preserved: %v", shard)
	}
}

func TestShardOfAgreesWithPartition(t *testing.T) {
	edges := makeFeasible([]uint8{1, 2, 3, 4, 5, 250, 7}, []uint8{1, 2, 3, 4, 5, 6, 7})
	const n, seed = 5, 42
	shards := PartitionByUser(edges, n, seed)
	for si, shard := range shards {
		for _, e := range shard {
			if got := ShardOf(e.User, n, seed); got != si {
				t.Fatalf("ShardOf(%d) = %d but PartitionByUser placed it in %d", e.User, got, si)
			}
		}
	}
	// Different seeds should (generically) route differently somewhere.
	diff := false
	for u := User(0); u < 64; u++ {
		if ShardOf(u, n, 1) != ShardOf(u, n, 2) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("ShardOf ignored its seed")
	}
}

func TestShardOfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ShardOf(1, 0, 1)
}

func TestRoundRobin(t *testing.T) {
	edges := makeFeasible([]uint8{1, 2, 3, 4, 5, 6}, []uint8{1, 2, 3, 4, 5, 6})
	shards := RoundRobin(edges, 3)
	if got := len(Concat(shards)); got != len(edges) {
		t.Errorf("lost elements: %d vs %d", got, len(edges))
	}
	for i, e := range edges {
		if shards[i%3][i/3] != e {
			t.Fatalf("element %d misplaced", i)
		}
	}
}

func TestPartitionPanicsOnBadN(t *testing.T) {
	for name, fn := range map[string]func(){
		"partition": func() { PartitionByUser(nil, 0, 1) },
		"rr":        func() { RoundRobin(nil, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
