package client

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/internal/netproto"
)

// UDPOptions tunes a UDPClient. The zero value selects the defaults.
type UDPOptions struct {
	// BatchSize is how many edges Ingest buffers per frame. Default 256
	// (~0.5-2.5 KiB on the wire, under a common MTU at typical ids).
	BatchSize int
	// Session identifies this sender to the receiver's sequence tracker.
	// 0 (the default) mints a random id — the right choice: a session id
	// must be fresh per process, because the receiver treats a reused id
	// whose sequence restarted as stale traffic and drops it.
	Session uint64
	// AckEvery requests a delivery ack every N data frames (default 16;
	// negative disables acks entirely). Acks double as flow control: at
	// most AckWindow requests ride unacknowledged, so the sender can
	// never be more than AckEvery*AckWindow frames ahead of the receiver
	// — which is what keeps a fast sender from overrunning socket
	// buffers even on loopback.
	AckEvery int
	// AckWindow is the outstanding-ack bound (default 4). When it is
	// full, sends block until an ack arrives or AckTimeout passes; on
	// timeout the oldest outstanding request is abandoned (counted in
	// Stats) so a dead receiver degrades to fire-and-forget instead of
	// deadlocking the sender.
	AckWindow int
	// AckTimeout bounds ack waits (window space and Flush confirmation).
	// Default 2s.
	AckTimeout time.Duration
}

func (o UDPOptions) withDefaults() UDPOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.Session == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			panic("client: reading random session id: " + err.Error())
		}
		o.Session = binary.LittleEndian.Uint64(b[:])
	}
	if o.AckEvery == 0 {
		o.AckEvery = 16
	} else if o.AckEvery < 0 {
		o.AckEvery = 0
	}
	if o.AckWindow <= 0 {
		o.AckWindow = 4
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 2 * time.Second
	}
	return o
}

// UDPClientStats is a UDPClient's send-side ledger.
type UDPClientStats struct {
	FramesSent uint64
	EdgesSent  uint64
	// AcksRequested / AcksReceived / AcksAbandoned describe the windowed
	// ack exchange; Abandoned counts requests dropped after AckTimeout to
	// keep the window bounded.
	AcksRequested uint64
	AcksReceived  uint64
	AcksAbandoned uint64
	// LastAck is the most recent (highest-covering) ack: compare its
	// Gaps/Replays against zero to know whether everything sent so far
	// landed exactly once.
	LastAck netproto.Ack
	// Acked reports whether any ack has arrived yet (LastAck is zero
	// until then).
	Acked bool
}

// maxRTTSamples bounds the retained ack round-trip samples.
const maxRTTSamples = 1 << 20

// UDPClient ships edges to a vosd UDP listener over the VOSSTRM1 datagram
// protocol — the fire-and-forget ingest tier. Unlike Client it answers no
// queries: UDP is write-only, and callers pair it with an HTTP Client for
// reads. Delivery is not guaranteed; it is *accounted*: sequence numbers
// let the receiver detect every lost, reordered, or replayed frame, and
// the windowed acks (see UDPOptions.AckEvery) report that ledger back, so
// a sender always knows whether the remote sketch still matches what it
// sent. Safe for concurrent use. Close when done.
type UDPClient struct {
	conn net.Conn
	opt  UDPOptions

	mu        sync.Mutex
	pend      []vos.Edge
	buf       []byte
	seq       uint64
	st        UDPClientStats
	pending   map[uint64]time.Time // outstanding ack requests: seq → send time
	rtts      []time.Duration
	ackNotify chan struct{}
	closed    bool

	wg sync.WaitGroup
}

// NewUDP creates a UDPClient for the vosd datagram listener at addr
// (e.g. "host:9090").
func NewUDP(addr string, opt UDPOptions) (*UDPClient, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	c := &UDPClient{
		conn:      conn,
		opt:       opt.withDefaults(),
		pending:   make(map[uint64]time.Time),
		ackNotify: make(chan struct{}),
	}
	if c.opt.AckEvery > 0 {
		c.wg.Add(1)
		go c.readAcks()
	}
	return c, nil
}

// Session returns the session id frames are stamped with.
func (c *UDPClient) Session() uint64 { return c.opt.Session }

// Ingest buffers edges and ships every full BatchSize chunk as one data
// frame. Frames are never retried (an XOR batch must not risk double
// application); a send error reports the frame that failed, with
// everything not yet framed still buffered.
func (c *UDPClient) Ingest(ctx context.Context, edges []vos.Edge) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return vos.ErrClosed
	}
	c.pend = append(c.pend, edges...)
	for len(c.pend) >= c.opt.BatchSize {
		batch := c.pend[:c.opt.BatchSize]
		if err := c.shipLocked(ctx, batch, false); err != nil {
			return err
		}
		c.pend = c.pend[c.opt.BatchSize:]
	}
	if len(c.pend) == 0 {
		c.pend = nil
	}
	return nil
}

// Flush ships the buffered partial batch and — when acks are enabled —
// confirms delivery: a final ack-requesting frame (zero-edge if nothing
// is buffered) is sent and Flush blocks until the receiver's ack covers
// it or AckTimeout passes. After a nil return, Stats().LastAck reflects
// everything sent so far; its Gaps/Replays are the caller's loss check.
func (c *UDPClient) Flush(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return vos.ErrClosed
	}
	if len(c.pend) > 0 {
		batch := c.pend
		c.pend = nil
		if err := c.shipLocked(ctx, batch, c.opt.AckEvery > 0); err != nil {
			return err
		}
	}
	if c.opt.AckEvery == 0 || c.st.FramesSent == 0 {
		return nil
	}
	// Confirm with a zero-edge ping unless the frame just shipped already
	// asked: the receiver observes its sequence and answers the ledger.
	last := c.seq - 1
	if _, outstanding := c.pending[last]; !outstanding {
		if err := c.shipLocked(ctx, nil, true); err != nil {
			return err
		}
		last = c.seq - 1
	}
	return c.waitAckedLocked(ctx, last)
}

// Close flushes (best-effort delivery confirmation included) and closes
// the socket. The client is unusable afterwards.
func (c *UDPClient) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opt.AckTimeout)
	defer cancel()
	flushErr := c.Flush(ctx)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	closeErr := c.conn.Close()
	c.wg.Wait()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Stats snapshots the send-side counters.
func (c *UDPClient) Stats() UDPClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.st
}

// TakeRTTs drains the collected ack round-trip samples (each one data
// frame's send→ack latency) — the soak harness's p99 ingest latency feed.
func (c *UDPClient) TakeRTTs() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.rtts
	c.rtts = nil
	return out
}

// shipLocked frames and sends one batch under mu. forceAck requests an
// ack regardless of the AckEvery cadence.
func (c *UDPClient) shipLocked(ctx context.Context, edges []vos.Edge, forceAck bool) error {
	ackReq := forceAck || (c.opt.AckEvery > 0 && c.st.FramesSent%uint64(c.opt.AckEvery) == 0)
	if ackReq {
		if err := c.reserveAckSlotLocked(ctx); err != nil {
			return err
		}
	}
	var flags uint16
	if ackReq {
		flags = netproto.FlagAckRequest
	}
	frame, err := netproto.AppendDataFrame(c.buf[:0], c.opt.Session, c.seq, flags, edges)
	if err != nil {
		return err
	}
	c.buf = frame
	if _, err := c.conn.Write(frame); err != nil {
		return err
	}
	if ackReq {
		c.pending[c.seq] = time.Now()
		c.st.AcksRequested++
	}
	c.seq++
	c.st.FramesSent++
	c.st.EdgesSent += uint64(len(edges))
	return nil
}

// reserveAckSlotLocked blocks (dropping mu while waiting) until the
// outstanding-ack window has room. On AckTimeout the oldest outstanding
// request is abandoned: bounded sender state and forward progress beat
// waiting forever on a dead receiver.
func (c *UDPClient) reserveAckSlotLocked(ctx context.Context) error {
	for len(c.pending) >= c.opt.AckWindow {
		ch := c.ackNotify
		timer := time.NewTimer(c.opt.AckTimeout)
		c.mu.Unlock()
		select {
		case <-ch:
			timer.Stop()
			c.mu.Lock()
		case <-ctx.Done():
			timer.Stop()
			c.mu.Lock()
			return ctx.Err()
		case <-timer.C:
			c.mu.Lock()
			if len(c.pending) >= c.opt.AckWindow {
				oldest, first := uint64(0), true
				for s := range c.pending {
					// Serial-number order: the smallest outstanding seq.
					if first || s-oldest >= 1<<63 {
						oldest, first = s, false
					}
				}
				delete(c.pending, oldest)
				c.st.AcksAbandoned++
			}
		}
	}
	return nil
}

// waitAckedLocked blocks (dropping mu while waiting) until the last ack
// covers seq, the context ends, or AckTimeout passes.
func (c *UDPClient) waitAckedLocked(ctx context.Context, seq uint64) error {
	timer := time.NewTimer(c.opt.AckTimeout)
	defer timer.Stop()
	for {
		if c.st.Acked && c.st.LastAck.Highest-seq < 1<<63 {
			return nil
		}
		ch := c.ackNotify
		c.mu.Unlock()
		select {
		case <-ch:
			c.mu.Lock()
		case <-ctx.Done():
			c.mu.Lock()
			return ctx.Err()
		case <-timer.C:
			c.mu.Lock()
			return fmt.Errorf("client: no ack covering frame %d within %v", seq, c.opt.AckTimeout)
		}
	}
}

// readAcks drains ack frames off the socket until Close.
func (c *UDPClient) readAcks() {
	defer c.wg.Done()
	buf := make([]byte, netproto.HeaderSize+64)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return
		}
		f, err := netproto.DecodeFrame(buf[:n])
		if err != nil || f.Type != netproto.TypeAck {
			continue
		}
		ack, err := f.DecodeAck()
		if err != nil || ack.Session != c.opt.Session {
			continue
		}
		c.mu.Lock()
		if t0, ok := c.pending[ack.EchoSeq]; ok {
			delete(c.pending, ack.EchoSeq)
			if len(c.rtts) < maxRTTSamples {
				c.rtts = append(c.rtts, time.Since(t0))
			}
		}
		c.st.AcksReceived++
		if !c.st.Acked || ack.Highest-c.st.LastAck.Highest < 1<<63 {
			c.st.LastAck = ack
			c.st.Acked = true
		}
		close(c.ackNotify)
		c.ackNotify = make(chan struct{})
		c.mu.Unlock()
	}
}
