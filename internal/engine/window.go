package engine

// Sliding windows over the sharded engine.
//
// Each shard owns a core.Window instead of a bare sketch: edges land in
// the shard's current bucket, the shard's live view is the window's merged
// sketch, and the engine's global snapshot merges those views exactly as
// before — windowing changes what each shard's sketch *contains*, not how
// shards compose. Because VOS merging is exact for any stream partition,
// the merged windowed snapshot is bit-identical to a single Window that
// consumed the whole stream.
//
// Rotation is coordinated: every shard window is created with the same
// epoch-aligned boundaries and only ever advances under the engine's
// window lock (winMu), which snapshot building and checkpointing hold in
// read mode for their whole merge loop — so no snapshot or checkpoint can
// observe shard A pre-rotation and shard B post-rotation. The lock order
// is winMu before any shard's skMu; the ingest workers take only skMu and
// are blocked per shard exactly for that shard's O(sketch) retire pass.
//
// Time advances from three places, all funnelled through AdvanceWindowTo:
// the ingest and query paths poll the clock (one atomic load when nothing
// has expired), the linger ticker covers idle streams, and timestamped
// ingest drives event time explicitly. The clock is WindowConfig.Now so
// tests rotate deterministically.

import (
	"errors"
	"time"

	"github.com/vossketch/vos/internal/core"
)

// ErrNoWindow is returned by window operations on an engine configured
// without Config.Window.
var ErrNoWindow = errors.New("engine: no window configured")

// ErrOutsideWindow reports a query instant that predates the live window:
// the edges that would answer it have been retired and no longer exist
// anywhere in the engine. Callers should either drop the time constraint
// or widen the window.
var ErrOutsideWindow = errors.New("engine: requested time predates the window")

// WindowConfig enables sliding-window mode: the engine keeps the last
// Buckets·BucketDuration of stream time and forgets older edges in
// O(sketch) per bucket rotation.
type WindowConfig struct {
	// Buckets is B, the ring size. The window always spans the B−1 most
	// recent full buckets plus the current, still-filling one; 1 gives a
	// tumbling window. Required, ≥ 1.
	Buckets int
	// BucketDuration is the time span of one bucket — the rotation period
	// and the window's advancement granularity. Required, > 0.
	BucketDuration time.Duration
	// Now supplies the clock that drives rotation on untimestamped ingest
	// and on queries. nil means time.Now. Tests inject a fake clock here
	// for deterministic rotation.
	Now func() time.Time
}

// WindowInfo describes the live window — see Engine.WindowInfo.
type WindowInfo struct {
	// Buckets and BucketDuration echo the configuration.
	Buckets        int
	BucketDuration time.Duration
	// Start is the inclusive start of the live window (the oldest retained
	// instant); End is the exclusive end of the current bucket — the next
	// rotation boundary. Start = End − Buckets·BucketDuration.
	Start, End time.Time
	// Rotations counts buckets retired since the engine started.
	Rotations uint64
}

// Span returns the window's total time coverage, Buckets·BucketDuration.
func (w WindowInfo) Span() time.Duration {
	return time.Duration(w.Buckets) * w.BucketDuration
}

// Contains reports whether t falls inside the live window [Start, End).
func (w WindowInfo) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// validateWindow checks the window knobs at engine construction.
func validateWindow(w *WindowConfig) error {
	if w == nil {
		return nil
	}
	if w.Buckets < 1 {
		return errors.New("engine: Window.Buckets must be at least 1")
	}
	if w.BucketDuration <= 0 {
		return errors.New("engine: Window.BucketDuration must be positive")
	}
	return nil
}

// winNow reads the configured clock.
func (e *Engine) winNow() time.Time {
	if e.cfg.Window != nil && e.cfg.Window.Now != nil {
		return e.cfg.Window.Now()
	}
	return time.Now()
}

// Windowed reports whether the engine runs in sliding-window mode.
func (e *Engine) Windowed() bool { return e.cfg.Window != nil }

// WindowInfo returns the live window boundaries, advancing them first if
// the clock has crossed a rotation boundary; ok is false on an unwindowed
// engine.
func (e *Engine) WindowInfo() (WindowInfo, bool) {
	if e.cfg.Window == nil {
		return WindowInfo{}, false
	}
	e.maybeAdvance()
	end := e.winEnd.Load()
	w := e.cfg.Window
	return WindowInfo{
		Buckets:        w.Buckets,
		BucketDuration: w.BucketDuration,
		Start:          time.Unix(0, end-int64(w.Buckets)*w.BucketDuration.Nanoseconds()),
		End:            time.Unix(0, end),
		Rotations:      e.winRot.Load(),
	}, true
}

// maybeAdvance rotates the window if the clock has crossed the current
// bucket's end. The fast path — nothing expired — is one atomic load and a
// compare; it is called from the ingest and query entry points, so an idle
// or untimestamped stream still retires buckets on wall time. No-op on
// unwindowed engines.
func (e *Engine) maybeAdvance() {
	if e.cfg.Window == nil {
		return
	}
	now := e.winNow()
	if now.UnixNano() < e.winEnd.Load() {
		return
	}
	e.AdvanceWindowTo(now)
}

// AdvanceWindowTo rotates every shard's window (and the recovery base, if
// present) forward through all bucket boundaries up to t, in lockstep
// under the window lock, and returns the number of boundaries crossed.
// Instants at or before the current boundary are a no-op — the window
// never moves backwards, so clock-skewed or late timestamps cannot unwind
// retired state. On an unwindowed engine it returns 0.
func (e *Engine) AdvanceWindowTo(t time.Time) int {
	if e.cfg.Window == nil {
		return 0
	}
	e.winMu.Lock()
	defer e.winMu.Unlock()
	if t.UnixNano() < e.winEnd.Load() {
		return 0 // another caller advanced past t while we waited
	}
	steps := 0
	for i, s := range e.shards {
		s.skMu.Lock()
		n := s.win.AdvanceTo(t)
		s.skMu.Unlock()
		if i == 0 {
			steps = n
		} else if n != steps {
			// Impossible: every window shares the same boundaries and only
			// advances here, under winMu.
			panic("engine: shard windows rotated out of lockstep")
		}
	}
	if e.winBase != nil {
		e.winBase.AdvanceTo(t)
	}
	if steps > 0 {
		e.winRot.Add(uint64(steps))
		e.winEnd.Store(e.shards[0].win.End().UnixNano())
	}
	return steps
}

// windowSnapshot builds the cross-shard window state for a checkpoint:
// bucket k of the result is the exact merge of bucket k of every shard
// window plus bucket k of the recovery base. Callers hold walMu (no
// producers) and must have flushed; the window read-lock keeps rotation
// out for the duration, so the buckets of different shards are aligned.
func (e *Engine) windowSnapshot() (*core.Window, error) {
	e.winMu.RLock()
	defer e.winMu.RUnlock()
	w := e.cfg.Window
	out, err := core.NewWindowAt(e.cfg.Sketch, w.Buckets, w.BucketDuration, time.Unix(0, e.winEnd.Load()))
	if err != nil {
		return nil, err
	}
	merge := func(src *core.Window) error {
		for k := 0; k < w.Buckets; k++ {
			if err := out.MergeBucket(k, src.Bucket(k)); err != nil {
				return err
			}
		}
		return nil
	}
	if e.winBase != nil {
		if err := merge(e.winBase); err != nil {
			return nil, err
		}
	}
	for _, s := range e.shards {
		s.skMu.RLock()
		err := merge(s.win)
		s.skMu.RUnlock()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
