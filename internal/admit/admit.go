// Package admit implements transport-neutral ingest admission control:
// a per-batch size cap and an in-flight byte budget with worst-case
// pre-charging and trim-to-real-footprint accounting.
//
// The policy was born in the HTTP server (see server.Options) and is the
// same for every ingest transport: before a batch is read or decoded, the
// transport charges the batch's worst-case memory — wire bytes plus the
// largest edge slice the payload could decode to — against a shared
// budget. The compact binary format packs an edge into as little as two
// wire bytes, so a binary payload can decode to ~12x its wire size;
// charging wire bytes alone would admit far more decoded memory than the
// budget names, and charging after decoding would bound nothing. Once
// parsing reveals the real edge count, the pessimistic hold is trimmed so
// concurrent batches can use the freed budget while the engine ingests.
//
// One Controller may be shared by several transports (the HTTP handlers
// and the UDP listener in vosd share one), making the budget a bound on
// the process's total in-flight ingest memory, not a per-plane figure.
package admit

import (
	"errors"
	"fmt"
	"sync"
	"unsafe"

	"github.com/vossketch/vos/internal/stream"
)

// Defaults for NewController's zero values — the values the HTTP server
// has always used: the budget is sized so one maximal binary batch under
// the default batch cap (13 x 8 MiB = 104 MiB worst case) is admissible.
const (
	DefaultMaxBatchBytes    = 8 << 20
	DefaultMaxInFlightBytes = 128 << 20
)

// EdgeMemBytes is the in-memory footprint of one decoded edge, used to
// top up the wire-byte charge so the in-flight budget bounds decoded
// slices too (binary edges can be ~2 bytes on the wire).
const EdgeMemBytes = int64(unsafe.Sizeof(stream.Edge{}))

// ErrBackpressure reports a transiently exhausted budget: the batch could
// be admitted on an idle controller, so the caller should shed it with a
// retry hint (HTTP 429) or drop it (fire-and-forget datagrams).
var ErrBackpressure = errors.New("admit: in-flight ingest byte budget exhausted")

// BatchTooLargeError reports a batch whose declared wire size exceeds the
// per-batch cap. Retrying cannot help; the sender must split the batch.
type BatchTooLargeError struct {
	Wire, Limit int64
}

func (e *BatchTooLargeError) Error() string {
	return fmt.Sprintf("ingest body %d bytes exceeds the %d byte limit; split the batch", e.Wire, e.Limit)
}

// BudgetExceededError reports a batch whose worst-case footprint exceeds
// the whole in-flight budget — it could never be admitted even on an idle
// controller, so retrying would loop forever. The worst case scales with
// the declared size, so splitting always helps.
type BudgetExceededError struct {
	Held, Budget int64
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("batch worst-case footprint %d bytes exceeds the %d byte in-flight budget; split the batch",
		e.Held, e.Budget)
}

// WorstCase returns the pessimistic memory charge for a payload of wire
// bytes: the bytes themselves, plus — for the binary format, whose
// elements occupy at least two wire bytes each — the largest edge slice
// they could decode to. Text formats (JSON, NDJSON) decode to roughly
// their wire size, so their worst case is the wire size alone.
func WorstCase(wire int64, binary bool) int64 {
	if binary {
		return wire + wire/2*EdgeMemBytes
	}
	return wire
}

// Controller is a shared admission budget. All methods are safe for
// concurrent use.
type Controller struct {
	maxBatch int64
	budget   int64

	mu        sync.Mutex
	remaining int64
}

// NewController builds a Controller with the given per-batch cap and
// in-flight budget. Zero or negative values select the defaults, and the
// budget is floored at the batch cap — a budget smaller than one full
// batch would deadlock transports that charge the cap up front (chunked
// HTTP bodies of unknown length).
func NewController(maxBatchBytes, maxInFlightBytes int64) *Controller {
	if maxBatchBytes <= 0 {
		maxBatchBytes = DefaultMaxBatchBytes
	}
	if maxInFlightBytes <= 0 {
		maxInFlightBytes = DefaultMaxInFlightBytes
	}
	if maxInFlightBytes < maxBatchBytes {
		maxInFlightBytes = maxBatchBytes
	}
	return &Controller{maxBatch: maxBatchBytes, budget: maxInFlightBytes, remaining: maxInFlightBytes}
}

// MaxBatchBytes returns the per-batch wire-size cap.
func (c *Controller) MaxBatchBytes() int64 { return c.maxBatch }

// MaxInFlightBytes returns the total in-flight budget.
func (c *Controller) MaxInFlightBytes() int64 { return c.budget }

// InFlightBytes returns the budget currently held by admitted batches.
func (c *Controller) InFlightBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget - c.remaining
}

// Admit charges one batch's worst case against the budget. On success the
// returned Hold owns the charge: the caller trims it once decoding
// reveals the real edge count and closes it when ingestion finishes. On
// failure the error is one of *BatchTooLargeError (wire exceeds the
// per-batch cap), *BudgetExceededError (could never fit), or
// ErrBackpressure (transiently exhausted).
func (c *Controller) Admit(wire int64, binary bool) (*Hold, error) {
	if wire > c.maxBatch {
		return nil, &BatchTooLargeError{Wire: wire, Limit: c.maxBatch}
	}
	held := WorstCase(wire, binary)
	if held > c.budget {
		return nil, &BudgetExceededError{Held: held, Budget: c.budget}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if held > c.remaining {
		return nil, ErrBackpressure
	}
	c.remaining -= held
	return &Hold{c: c, wire: wire, held: held}, nil
}

// Hold is one admitted batch's slice of the budget.
type Hold struct {
	c    *Controller
	wire int64
	held int64
}

// Held returns the bytes currently charged by this hold.
func (h *Hold) Held() int64 { return h.held }

// Trim shrinks the pessimistic hold to the batch's real footprint — wire
// bytes plus edges decoded slots — freeing budget for concurrent batches
// while the engine ingests. A footprint at or above the current hold
// (text formats, whose charge was never pessimistic) leaves it unchanged.
func (h *Hold) Trim(edges int) {
	actual := h.wire + int64(edges)*EdgeMemBytes
	if actual >= h.held {
		return
	}
	h.c.mu.Lock()
	h.c.remaining += h.held - actual
	h.c.mu.Unlock()
	h.held = actual
}

// Close releases whatever the hold still charges. Idempotent.
func (h *Hold) Close() {
	if h.held == 0 {
		return
	}
	h.c.mu.Lock()
	h.c.remaining += h.held
	h.c.mu.Unlock()
	h.held = 0
}
