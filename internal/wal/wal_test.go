package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

// testEdges builds a deterministic batch of n edges starting at seq.
func testEdges(seq, n int) []stream.Edge {
	out := make([]stream.Edge, n)
	for i := range out {
		op := stream.Insert
		if (seq+i)%3 == 0 {
			op = stream.Delete
		}
		out[i] = stream.Edge{
			User: stream.User(seq + i),
			Item: stream.Item((seq + i) * 7),
			Op:   op,
		}
	}
	return out
}

// collect replays the whole log into one slice.
func collect(t *testing.T, l *Log, from uint64) []stream.Edge {
	t.Helper()
	var out []stream.Edge
	if err := l.Replay(from, func(_ uint64, edges []stream.Edge) error {
		out = append(out, edges...)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []stream.Edge
	for i := 0; i < 10; i++ {
		batch := testEdges(i*50, 50)
		if err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch...)
	}
	if err := l.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if got := l.Pos(); got != 500 {
		t.Fatalf("Pos = %d, want 500", got)
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdges(0, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation nearly every batch.
	l, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncEveryN, SyncEveryN: 100})
	if err != nil {
		t.Fatal(err)
	}
	var want []stream.Edge
	for i := 0; i < 20; i++ {
		batch := testEdges(i*17, 17)
		if err := l.Append(batch); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch...)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	for i, base := range segs {
		info, err := InspectSegment(filepath.Join(dir, segName(base)))
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if info.Base != base || info.Torn {
			t.Fatalf("segment %d info %+v, want base %d untorn", i, info, base)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: position survives, appends continue, replay sees everything.
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Pos(); got != uint64(len(want)) {
		t.Fatalf("reopened Pos = %d, want %d", got, len(want))
	}
	more := testEdges(len(want), 9)
	if err := l2.Append(more); err != nil {
		t.Fatal(err)
	}
	want = append(want, more...)
	got := collect(t, l2, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d edges, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTornTailDiscardedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdges(0, 30)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage and a partial frame at the tail.
	path := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize := fileSize(t, path)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open over torn tail: %v", err)
	}
	defer l2.Close()
	if got := l2.Pos(); got != 30 {
		t.Fatalf("Pos after torn tail = %d, want 30", got)
	}
	if got := len(collect(t, l2, 0)); got != 30 {
		t.Fatalf("replayed %d edges, want 30", got)
	}
	if now := fileSize(t, path); now >= tornSize {
		t.Fatalf("torn tail not truncated: %d >= %d bytes", now, tornSize)
	}
	// Appending after recovery lands at a clean boundary.
	if err := l2.Append(testEdges(30, 5)); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l2, 0)); got != 35 {
		t.Fatalf("replayed %d edges after post-recovery append, want 35", got)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestCorruptMiddleSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(testEdges(i*20, 20)); err != nil {
			t.Fatal(err)
		}
	}
	defer l.Close()
	segs, err := ListSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want ≥3 segments (err %v), got %d", err, len(segs))
	}
	// Flip a payload byte in the FIRST segment: CRC fails, and because it
	// is not the last segment the failure must surface, not be swallowed
	// as a torn tail.
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = l.Replay(0, func(uint64, []stream.Edge) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over corrupt middle segment = %v, want ErrCorrupt", err)
	}
}

func TestReplayFromSkipsAndStraddleFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 8; i++ {
		if err := l.Append(testEdges(i*10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// From a record boundary: only the suffix.
	got := collect(t, l, 50)
	if len(got) != 30 {
		t.Fatalf("replay from 50 returned %d edges, want 30", len(got))
	}
	if got[0] != testEdges(50, 1)[0] {
		t.Fatalf("suffix starts at %v, want user 50", got[0])
	}
	// Replay point inside a record: corrupt.
	err = l.Replay(55, func(uint64, []stream.Edge) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("straddling replay = %v, want ErrCorrupt", err)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if err := l.Append(testEdges(i*10, 10)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := ListSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	mid := segs[len(segs)/2]
	if err := l.TruncateBefore(mid); err != nil {
		t.Fatal(err)
	}
	after, _ := ListSegments(dir)
	if after[0] != mid {
		t.Fatalf("first surviving segment base %d, want %d", after[0], mid)
	}
	// The suffix from the truncation point is still fully replayable.
	if got := len(collect(t, l, mid)); got != int(100-mid) {
		t.Fatalf("replayed %d edges, want %d", got, 100-mid)
	}
	// Truncating at the live position keeps the current (last) segment.
	if err := l.TruncateBefore(l.Pos()); err != nil {
		t.Fatal(err)
	}
	if remaining, _ := ListSegments(dir); len(remaining) == 0 {
		t.Fatal("TruncateBefore deleted the current segment")
	}
}

func TestSkipTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testEdges(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.SkipTo(5); err == nil {
		t.Fatal("backwards SkipTo accepted")
	}
	if err := l.SkipTo(10); err != nil {
		t.Fatalf("no-op SkipTo: %v", err)
	}
	if err := l.SkipTo(100); err != nil {
		t.Fatal(err)
	}
	if got := l.Pos(); got != 100 {
		t.Fatalf("Pos after SkipTo = %d, want 100", got)
	}
	if err := l.Append(testEdges(100, 3)); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l, 100)); got != 3 {
		t.Fatalf("replay from 100 returned %d edges, want 3", got)
	}
}

func TestCheckpointRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	if _, _, found, err := LatestCheckpoint(dir); err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
	if err := WriteCheckpoint(dir, 100, []byte("sketch-at-100")); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, 250, []byte("sketch-at-250")); err != nil {
		t.Fatal(err)
	}
	pos, sk, found, err := LatestCheckpoint(dir)
	if err != nil || !found || pos != 250 || !bytes.Equal(sk, []byte("sketch-at-250")) {
		t.Fatalf("LatestCheckpoint = %d %q %v %v", pos, sk, found, err)
	}
	// Corrupt the newest: the previous one must be used.
	path := filepath.Join(dir, ckptName(250))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pos, sk, found, err = LatestCheckpoint(dir)
	if err != nil || !found || pos != 100 || !bytes.Equal(sk, []byte("sketch-at-100")) {
		t.Fatalf("fallback LatestCheckpoint = %d %q %v %v", pos, sk, found, err)
	}
}

func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	for _, pos := range []uint64{10, 20, 30, 40} {
		if err := WriteCheckpoint(dir, pos, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	all, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0] != 30 || all[1] != 40 {
		t.Fatalf("retained checkpoints %v, want [30 40]", all)
	}
}

func TestDecodeCheckpointErrors(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("short"),
		append([]byte("NOTMAGIC"), make([]byte, 24)...),
	} {
		if _, _, err := DecodeCheckpoint(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeCheckpoint(%q) = %v, want ErrCorrupt", bad, err)
		}
	}
	// Length field inconsistent with the body but CRC recomputed: still bad.
	good := EncodeCheckpoint(7, []byte("abc"))
	if _, _, err := DecodeCheckpoint(good[:len(good)-5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated checkpoint accepted: %v", err)
	}
	pos, sk, err := DecodeCheckpoint(good)
	if err != nil || pos != 7 || !bytes.Equal(sk, []byte("abc")) {
		t.Fatalf("round trip = %d %q %v", pos, sk, err)
	}
}

func TestDecodeEdgesErrors(t *testing.T) {
	for _, bad := range [][]byte{
		{},           // no count
		{5},          // count without edges
		{1, 0x80},    // unterminated user varint
		{1, 2, 0x80}, // unterminated item varint
	} {
		if _, err := DecodeEdges(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeEdges(%v) = %v, want ErrCorrupt", bad, err)
		}
	}
	// Trailing bytes after the declared count are corruption, not slack.
	payload := appendEdges(nil, testEdges(0, 2))
	if _, err := DecodeEdges(append(payload, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing payload byte accepted")
	}
}

func TestRotateExplicit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rotating an empty segment is a no-op.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := ListSegments(dir); len(segs) != 1 {
		t.Fatalf("empty rotate changed segment count: %v", segs)
	}
	if err := l.Append(testEdges(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	segs, _ := ListSegments(dir)
	if len(segs) != 2 || segs[1] != 10 {
		t.Fatalf("segments after rotate %v, want [0 10]", segs)
	}
	if err := l.Append(testEdges(10, 5)); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l, 0)); got != 15 {
		t.Fatalf("replayed %d edges across rotated segments, want 15", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after Close = %v, want ErrClosed", err)
	}
	if err := l.SkipTo(99); !errors.Is(err, ErrClosed) {
		t.Fatalf("SkipTo after Close = %v, want ErrClosed", err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// Files that look almost like segments/checkpoints must not confuse
	// directory scans: wrong digit width, bad number, wrong affixes.
	for _, name := range []string{
		"wal-123.seg", "wal-xxxxxxxxxxxxxxxxxxxx.seg", "wal-00000000000000000001.tmp",
		"checkpoint-99.ckpt", "notes.txt",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(dir)
	if err != nil || len(segs) != 0 {
		t.Fatalf("ListSegments = %v, %v; want empty", segs, err)
	}
	cks, err := ListCheckpoints(dir)
	if err != nil || len(cks) != 0 {
		t.Fatalf("ListCheckpoints = %v, %v; want empty", cks, err)
	}
	if _, _, found, err := LatestCheckpoint(filepath.Join(dir, "missing")); err != nil || found {
		t.Fatalf("missing dir: found=%v err=%v", found, err)
	}
	// A fresh log coexists with the foreign files.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Pos(); got != 0 {
		t.Fatalf("Pos = %d, want 0", got)
	}
}

func TestReplayRefusesMissingPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		if err := l.Append(testEdges(i*20, 20)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := ListSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Delete the first segment and replay from 0: the hole must be an
	// error, not a silent skip — the missing edges would corrupt parity.
	if err := os.Remove(SegmentPath(dir, segs[0])); err != nil {
		t.Fatal(err)
	}
	err = ReplayDir(dir, 0, func(uint64, []stream.Edge) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over missing prefix = %v, want ErrCorrupt", err)
	}
	// Delete a middle segment: a mid-log hole fails the same way even
	// when replay starts at an existing boundary.
	segs, _ = ListSegments(dir)
	if err := os.Remove(SegmentPath(dir, segs[1])); err != nil {
		t.Fatal(err)
	}
	err = ReplayDir(dir, segs[0], func(uint64, []stream.Edge) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay over mid-log gap = %v, want ErrCorrupt", err)
	}
}

func TestTornSegmentCreationRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEdges(0, 10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between segment creation and header durability:
	// the rotated-to segment survives shorter than its header.
	if err := os.Truncate(SegmentPath(dir, 10), 5); err != nil {
		t.Fatal(err)
	}
	// The read-only inspection paths tolerate it too — vosinspect must
	// work on exactly these crashed directories.
	info, err := InspectSegment(SegmentPath(dir, 10))
	if err != nil || !info.Torn || info.Base != 10 || info.Edges != 0 {
		t.Fatalf("InspectSegment over torn creation = %+v, %v", info, err)
	}
	replayed := 0
	if err := ReplayDir(dir, 0, func(_ uint64, edges []stream.Edge) error {
		replayed += len(edges)
		return nil
	}); err != nil {
		t.Fatalf("ReplayDir over torn creation: %v", err)
	}
	if replayed != 10 {
		t.Fatalf("ReplayDir replayed %d edges, want 10", replayed)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open over torn segment creation: %v", err)
	}
	defer l2.Close()
	if got := l2.Pos(); got != 10 {
		t.Fatalf("Pos = %d, want 10", got)
	}
	if err := l2.Append(testEdges(10, 4)); err != nil {
		t.Fatal(err)
	}
	if got := len(collect(t, l2, 0)); got != 14 {
		t.Fatalf("replayed %d edges, want 14", got)
	}
}

func TestPoisonedLogRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Simulate a failed rollback: the segment may hold garbage, so the
	// log must latch the error and refuse all further writes.
	poison := errors.New("poisoned")
	l.mu.Lock()
	l.failed = poison
	l.mu.Unlock()
	if err := l.Append(testEdges(0, 1)); !errors.Is(err, poison) {
		t.Fatalf("Append on poisoned log = %v, want the latched error", err)
	}
	if err := l.Sync(); !errors.Is(err, poison) {
		t.Fatalf("Sync on poisoned log = %v, want the latched error", err)
	}
}

func TestDirLockExcludesSecondOpen(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("directory flock is a no-op off unix")
	}
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	}
	// An explicitly unlocked open coexists (the caller's responsibility).
	l2, err := Open(dir, Options{DisableLock: true})
	if err != nil {
		t.Fatalf("DisableLock Open: %v", err)
	}
	l2.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with its Log: the directory is reusable.
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l3.Close()
}

func TestWriteCheckpointCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	if err := WriteCheckpoint(dir, 5, []byte("s")); err != nil {
		t.Fatal(err)
	}
	pos, sk, found, err := LatestCheckpoint(dir)
	if err != nil || !found || pos != 5 || !bytes.Equal(sk, []byte("s")) {
		t.Fatalf("LatestCheckpoint = %d %q %v %v", pos, sk, found, err)
	}
}

func TestOpenRejectsBadHeader(t *testing.T) {
	dir := t.TempDir()
	// A full-length header with the wrong magic is external corruption,
	// not a torn creation (a sub-header-length file would be — see
	// TestTornSegmentCreationRecovered), and must be rejected.
	bad := append([]byte("BADMAGIC"), make([]byte, segHeaderLen)...)
	if err := os.WriteFile(filepath.Join(dir, segName(0)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over bad header = %v, want ErrCorrupt", err)
	}
	if _, err := InspectSegment(filepath.Join(dir, segName(0))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("InspectSegment over bad header = %v, want ErrCorrupt", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncEveryBatch, SyncEveryN, SyncOff} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: p, SyncEveryN: 16})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := l.Append(testEdges(i*10, 10)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if got := l2.Pos(); got != 50 {
				t.Fatalf("Pos = %d, want 50", got)
			}
		})
	}
	if (SyncPolicy(99)).String() == "" {
		t.Fatal("unknown policy must still print")
	}
}
