package client

import (
	"context"
	"errors"
	"net/http"
	"time"
)

// RetryPolicy is the read-retry behavior of the client, extracted so a
// multi-backend caller (the cluster gateway, which holds one Client per
// vosd node) applies the same policy per backend instead of re-deriving
// it. The zero value retries nothing; Client derives its policy from
// Options in New.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt
	// (negative is treated as 0).
	MaxRetries int
	// Backoff is the first retry's delay, doubled per retry (non-positive
	// selects the 50ms default).
	Backoff time.Duration
}

// Do runs attempt up to 1+MaxRetries times, backing off exponentially
// between tries. Only transient failures are retried — see Retryable.
// Context cancellation during a backoff wait returns ctx.Err().
func (p RetryPolicy) Do(ctx context.Context, attempt func() error) error {
	retries := p.MaxRetries
	if retries < 0 {
		retries = 0
	}
	backoff := p.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var err error
	for try := 0; ; try++ {
		err = attempt()
		if err == nil || try >= retries || !Retryable(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// Retryable reports whether err is worth a retry: transport-level
// failures and server-side 5xx, but never context cancellation and never
// 4xx (the request itself is wrong; resending it cannot help). 501 is the
// 5xx exception — "capability not implemented" is as permanent as a 4xx.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *Error
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 && apiErr.Status != http.StatusNotImplemented
	}
	return true // transport error
}
