package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/poscache"
	"github.com/vossketch/vos/server"
)

// Options tunes a Gateway. The zero value selects the defaults.
type Options struct {
	// RingPath, when set, is where membership changes are persisted
	// (atomically rewritten on every handoff). A gateway built by Open
	// has it set to the path it loaded.
	RingPath string
	// ManifestPath, when set, is where CheckpointCluster records its
	// manifest.
	ManifestPath string
	// Client tunes the per-backend HTTP clients (retry policy, transport,
	// batch size). Linger is forced off: the gateway ships every ingest
	// synchronously, because its own ack must mean "acked by the owning
	// backend's WAL" — a gateway-side buffer would acknowledge edges a
	// backend crash could lose.
	Client client.Options
	// DisableSnapshotCache forces every read to re-gather instead of
	// reusing the merged cluster sketch until the next acknowledged
	// ingest or membership change. The cache key covers both, so there is
	// no correctness knob here — the field exists for benchmarks that
	// want to measure the cold gather.
	DisableSnapshotCache bool
}

// Gateway is the vosgw routing tier: one instance fans ingest to the
// ring's backends by user shard and answers every read from the XOR-merge
// of their exported sketches. It implements vos.SimilarityService (plus
// the Checkpointer, StateExporter, and PartialTopK extensions), so
// server.New serves it exactly as it serves an engine — the cluster
// speaks the same /v1/ API as a single node.
//
// Parity model: VOS state is pure parity, so for ANY partition of the
// stream the XOR of the parts' sketches equals the sketch of the whole.
// The gateway routes each user's edges to one owning backend (keeping
// per-user cardinalities exact and node-local) and merges all backends
// for queries — bit-identical to a single engine over the same stream,
// which the cluster parity tests pin for 2/3/4 nodes across crashes and
// live handoffs.
type Gateway struct {
	opt Options

	// mu guards ring and backends. The ring pointer is replaced, never
	// mutated, so readers copy it out under RLock and use it lock-free.
	mu       sync.RWMutex
	ring     *Ring
	backends map[string]*client.Client

	// gates serialize handoff against ingest per cluster shard: forward
	// holds the shard's RLock across "resolve owner, ship, ack", Handoff
	// holds Lock while it moves the state — so no edge can land on the
	// source after its state was exported (it would be lost to the
	// merge), and ingest never fails during a handoff, it just waits.
	gates []sync.RWMutex

	// ingests counts acknowledged ingest batches; with the ring version
	// it keys the snapshot cache. Counting BEFORE the gather makes a
	// stale hit impossible: a racing ingest bumps the counter and the
	// next query re-gathers.
	ingests atomic.Uint64

	snapMu  sync.Mutex
	snap    *core.VOS
	snapSeq uint64
	snapVer uint64

	// pcache is shared across every merged snapshot, same as the engine's:
	// position tables depend only on user and config.
	pcache *poscache.Cache

	closed atomic.Bool
}

// New builds a Gateway over a validated ring.
func New(ring *Ring, opt Options) (*Gateway, error) {
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	// Synchronous shipping: a batching linger would let the gateway ack
	// edges no backend has logged yet (see Options.Client).
	opt.Client.Linger = -1
	return &Gateway{
		opt:      opt,
		ring:     ring.Clone(),
		backends: make(map[string]*client.Client),
		gates:    make([]sync.RWMutex, ring.NumShards()),
		pcache:   poscache.New(4096),
	}, nil
}

// Open is New from an on-disk ring document; membership changes are
// persisted back to the same path.
func Open(ringPath string, opt Options) (*Gateway, error) {
	ring, err := LoadRing(ringPath)
	if err != nil {
		return nil, err
	}
	opt.RingPath = ringPath
	return New(ring, opt)
}

// Compile-time interface checks: the gateway is a full service peer.
var (
	_ vos.SimilarityService = (*Gateway)(nil)
	_ vos.Checkpointer      = (*Gateway)(nil)
	_ vos.StateExporter     = (*Gateway)(nil)
	_ vos.PartialTopK       = (*Gateway)(nil)
)

// Ring returns a copy of the live membership table.
func (g *Gateway) Ring() *Ring {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring.Clone()
}

// Close shuts down every backend client. It does not touch the backends
// themselves — their lifecycle belongs to their operators.
func (g *Gateway) Close() error {
	if !g.closed.CompareAndSwap(false, true) {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var first error
	for _, c := range g.backends {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.backends = make(map[string]*client.Client)
	return first
}

// backend returns (building lazily) the client for a backend base URL.
func (g *Gateway) backend(url string) *client.Client {
	g.mu.RLock()
	c := g.backends[url]
	g.mu.RUnlock()
	if c != nil {
		return c
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if c := g.backends[url]; c != nil {
		return c
	}
	c = client.New(url, g.opt.Client)
	g.backends[url] = c
	return c
}

// --- ingest ---

// Ingest implements vos.SimilarityService: edges are grouped by owning
// cluster shard and shipped to each owner concurrently, synchronously —
// when Ingest returns nil every edge is acked by its backend (durably,
// under the backend's sync policy). Routing uses the ring's seed and
// shard count, both fixed for the cluster's life, so a user's shard never
// changes; handoffs move whole shards between nodes without re-routing
// anyone.
func (g *Gateway) Ingest(ctx context.Context, edges []vos.Edge) error {
	if g.closed.Load() {
		return vos.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(edges) == 0 {
		return nil
	}
	ring := g.Ring()
	groups := make(map[int][]vos.Edge)
	for _, e := range edges {
		s := ring.ShardOf(e.User)
		groups[s] = append(groups[s], e)
	}
	var wg sync.WaitGroup
	errs := make([]error, 0, len(groups))
	var errMu sync.Mutex
	for shard, group := range groups {
		wg.Add(1)
		go func(shard int, group []vos.Edge) {
			defer wg.Done()
			if err := g.forward(ctx, shard, group); err != nil {
				errMu.Lock()
				errs = append(errs, fmt.Errorf("shard %d: %w", shard, err))
				errMu.Unlock()
			}
		}(shard, group)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	g.ingests.Add(1)
	return nil
}

// forward ships one shard's edges to its owner under the shard's handoff
// gate. The owner is resolved INSIDE the gate: a handoff completing just
// before we enter has already moved the state, so the edges must go to
// the new owner — resolving earlier could write to a node whose state was
// already exported, losing the edges from every future merge.
func (g *Gateway) forward(ctx context.Context, shard int, edges []vos.Edge) error {
	g.gates[shard].RLock()
	defer g.gates[shard].RUnlock()
	g.mu.RLock()
	url := g.ring.Shards[shard]
	g.mu.RUnlock()
	c := g.backend(url)
	if err := c.Ingest(ctx, edges); err != nil {
		return err
	}
	return c.Flush(ctx)
}

// --- scatter-gather reads ---

// errNoBackends reports a gather that reached zero nodes.
var errNoBackends = fmt.Errorf("%w: no cluster backend reachable", vos.ErrQueryUnavailable)

// snapshot gathers every backend's serialized sketch and returns their
// XOR-merge — the cluster-wide sketch a single engine would hold. This is
// the gateway's only read primitive: pair similarity, top-K, and stats
// all query the merge, because the estimator's β and collision-noise
// terms are properties of the GLOBAL array — per-node answers cannot be
// combined after the fact, but per-node STATE can, exactly.
//
// With allowPartial, unreachable backends are skipped and complete=false
// reports the gap; otherwise any failure fails the gather. Complete
// merges are cached, keyed by (acknowledged-ingest count, ring version):
// the count is captured BEFORE the gather, so a racing ingest can only
// make a cached snapshot re-gather early, never serve late.
func (g *Gateway) snapshot(ctx context.Context, allowPartial bool) (*core.VOS, bool, error) {
	seq := g.ingests.Load()
	ring := g.Ring()
	if !g.opt.DisableSnapshotCache {
		g.snapMu.Lock()
		if g.snap != nil && g.snapSeq == seq && g.snapVer == ring.Version {
			snap := g.snap
			g.snapMu.Unlock()
			return snap, true, nil
		}
		g.snapMu.Unlock()
	}

	type part struct {
		sk  *core.VOS
		err error
	}
	parts := make([]part, ring.NumShards())
	var wg sync.WaitGroup
	for i, url := range ring.Shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			data, err := g.backend(url).ExportSketch(ctx)
			if err != nil {
				parts[i] = part{err: fmt.Errorf("backend %s: %w", url, err)}
				return
			}
			sk, err := core.UnmarshalVOS(data)
			if err != nil {
				parts[i] = part{err: fmt.Errorf("backend %s: %w", url, err)}
				return
			}
			parts[i] = part{sk: sk}
		}(i, url)
	}
	wg.Wait()

	var merged *core.VOS
	complete := true
	for _, p := range parts {
		if p.err != nil {
			if !allowPartial {
				return nil, false, p.err
			}
			complete = false
			continue
		}
		if merged == nil {
			merged = core.MustNew(p.sk.Config())
			merged.SetPositionCache(g.pcache)
		}
		if err := merged.Merge(p.sk); err != nil {
			// A backend serving a different sketch config is misconfigured,
			// not unreachable: never paper over it with a partial answer.
			return nil, false, err
		}
	}
	if merged == nil {
		return nil, false, errNoBackends
	}
	if complete && !g.opt.DisableSnapshotCache {
		g.snapMu.Lock()
		g.snap = merged
		g.snapSeq = seq
		g.snapVer = ring.Version
		g.snapMu.Unlock()
	}
	return merged, complete, nil
}

// Similarity implements vos.SimilarityService from the full cluster merge
// (strict: every backend must answer — a pair estimate over partial state
// would be silently wrong, exactly what the typed service contract
// forbids).
func (g *Gateway) Similarity(ctx context.Context, u, v vos.User) (vos.Estimate, error) {
	if g.closed.Load() {
		return vos.Estimate{}, vos.ErrClosed
	}
	snap, _, err := g.snapshot(ctx, false)
	if err != nil {
		return vos.Estimate{}, err
	}
	return snap.Query(u, v), nil
}

// TopK implements vos.SimilarityService from the full cluster merge,
// ranked with the same core.RankBefore total order the engine's parallel
// fan-out uses — so the ranking is bit-identical to a single engine's.
func (g *Gateway) TopK(ctx context.Context, u vos.User, candidates []vos.User, n int) ([]vos.TopKResult, error) {
	if g.closed.Load() {
		return nil, vos.ErrClosed
	}
	snap, _, err := g.snapshot(ctx, false)
	if err != nil {
		return nil, err
	}
	return snap.TopKRecoveredContext(ctx, snap.RecoverSketch(u), candidates, n)
}

// TopKPartial implements vos.PartialTopK: like TopK, but unreachable
// backends degrade the answer (complete=false) instead of failing it —
// the ranking then covers the reachable portion of the cluster. The
// server surfaces the flag as the X-Vos-Partial header.
func (g *Gateway) TopKPartial(ctx context.Context, u vos.User, candidates []vos.User, n int) ([]vos.TopKResult, bool, error) {
	if g.closed.Load() {
		return nil, false, vos.ErrClosed
	}
	snap, complete, err := g.snapshot(ctx, true)
	if err != nil {
		return nil, false, err
	}
	top, err := snap.TopKRecoveredContext(ctx, snap.RecoverSketch(u), candidates, n)
	if err != nil {
		return nil, false, err
	}
	return top, complete, nil
}

// Cardinality implements vos.SimilarityService by routing to the owning
// backend — the one read that IS node-local: a user's edges all live on
// its owner, so the owner's count is the exact global count.
func (g *Gateway) Cardinality(ctx context.Context, u vos.User) (int64, error) {
	if g.closed.Load() {
		return 0, vos.ErrClosed
	}
	ring := g.Ring()
	return g.backend(ring.Shards[ring.ShardOf(u)]).Cardinality(ctx, u)
}

// Stats implements vos.SimilarityService from the full cluster merge.
// Summing per-backend stats would misreport every global quantity (β is
// the merged array's ones-fraction, not a sum), so stats pay for a gather
// like the other merged reads.
func (g *Gateway) Stats(ctx context.Context) (vos.Stats, error) {
	if g.closed.Load() {
		return vos.Stats{}, vos.ErrClosed
	}
	snap, _, err := g.snapshot(ctx, false)
	if err != nil {
		return vos.Stats{}, err
	}
	return snap.Stats(), nil
}

// ExportSketch implements vos.StateExporter: the serialized cluster-wide
// merge. A cluster's export is bit-identical to the export of a single
// engine over the same stream — the property the parity tests compare.
func (g *Gateway) ExportSketch(ctx context.Context) ([]byte, error) {
	if g.closed.Load() {
		return nil, vos.ErrClosed
	}
	snap, _, err := g.snapshot(ctx, false)
	if err != nil {
		return nil, err
	}
	return snap.MarshalBinary()
}

// --- handoff ---

// Handoff moves cluster shard shard onto the backend at to: quiesce the
// shard's ingest (writers queue on the gate), export the source node's
// state, import it into the target (which checkpoints durably before
// acking), bump and persist the ring, release. XOR-mergeability is what
// makes this exact: the target's merged state equals the source's, bit
// for bit, so cluster answers are unchanged across the move.
//
// The target must be FRESH — not in the ring. Every gather iterates ring
// entries, so importing into a node that already owns a shard would merge
// that node's state into the cluster twice, XOR-cancelling it. For the
// same reason a handoff that failed AFTER the import may have left state
// on the target; it must not be replayed against the same target (the
// second import would cancel the first) — rerun it with a fresh node.
//
// It returns the new ring version.
func (g *Gateway) Handoff(ctx context.Context, shard int, to string) (uint64, error) {
	if g.closed.Load() {
		return 0, vos.ErrClosed
	}
	if err := validateNodeURL(to); err != nil {
		return 0, fmt.Errorf("%w: handoff target: %v", ErrBadRing, err)
	}
	// The shard count is fixed for the gateway's life (it defines the user
	// partition), so the range check is safe before taking the gate.
	if shard < 0 || shard >= len(g.gates) {
		return 0, fmt.Errorf("%w: shard %d outside [0, %d)", ErrBadRing, shard, len(g.gates))
	}
	g.gates[shard].Lock()
	defer g.gates[shard].Unlock()

	ring := g.Ring()
	for i, node := range ring.Shards {
		if node == to {
			return 0, fmt.Errorf("%w: handoff target %s already owns shard %d (targets must be fresh: a second import would XOR-cancel its state)", ErrBadRing, to, i)
		}
	}
	from := ring.Shards[shard]

	state, err := g.backend(from).ExportSketch(ctx)
	if err != nil {
		return 0, fmt.Errorf("handoff shard %d: export from %s: %w", shard, from, err)
	}
	if err := g.backend(to).ImportSketch(ctx, state); err != nil {
		return 0, fmt.Errorf("handoff shard %d: import into %s: %w", shard, to, err)
	}

	next := ring.Clone()
	next.Shards[shard] = to
	next.Version++
	if g.opt.RingPath != "" {
		// Persist before publishing: a crash between the two leaves the
		// on-disk ring ahead of (never behind) the served one, and a
		// restart serving the new ring is correct — the state moved.
		if err := SaveRing(g.opt.RingPath, next); err != nil {
			return 0, fmt.Errorf("handoff shard %d: persist ring: %w", shard, err)
		}
	}

	g.mu.Lock()
	g.ring = next
	old := g.backends[from]
	delete(g.backends, from)
	g.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return next.Version, nil
}

// --- cluster checkpoint ---

// CheckpointCluster quiesces ALL ingest (every shard gate held), triggers
// each backend's durable checkpoint, and returns the manifest — a
// consistent cut: no edge is in flight while the backends persist, so
// the recorded positions jointly cover exactly the acknowledged stream.
// The manifest is persisted when Options.ManifestPath is set.
func (g *Gateway) CheckpointCluster(ctx context.Context) (*Manifest, error) {
	if g.closed.Load() {
		return nil, vos.ErrClosed
	}
	// Ascending gate order matches every other multi-gate path (there are
	// none today, but the discipline is free) and prevents deadlock with
	// future ones.
	for i := range g.gates {
		g.gates[i].Lock()
		defer g.gates[i].Unlock()
	}
	ring := g.Ring()
	m := &Manifest{RingVersion: ring.Version, RouteSeed: ring.RouteSeed, Shards: make([]ManifestShard, ring.NumShards())}
	for i, url := range ring.Shards {
		pos, err := g.backend(url).Checkpoint(ctx)
		if err != nil {
			return nil, fmt.Errorf("cluster checkpoint: shard %d (%s): %w", i, url, err)
		}
		m.Shards[i] = ManifestShard{Shard: i, Node: url, Position: pos}
	}
	if g.opt.ManifestPath != "" {
		if err := SaveManifest(g.opt.ManifestPath, m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Checkpoint implements vos.Checkpointer by delegating to
// CheckpointCluster; the returned position is the SUM of the backends'
// WAL positions — an aggregate progress marker, not a seekable offset
// (use CheckpointCluster for the per-node manifest).
func (g *Gateway) Checkpoint(ctx context.Context) (uint64, error) {
	m, err := g.CheckpointCluster(ctx)
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, s := range m.Shards {
		sum += s.Position
	}
	return sum, nil
}

// --- gateway HTTP surface ---

// Handler wraps the standard /v1/ API handler with the gateway-only
// routes (ring, handoff, cluster checkpoint). vosgw serves
// Handler(server.New(gw, opts)); the exact-path registrations win over
// the api handler's catch-all.
func (g *Gateway) Handler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(server.RouteClusterRing, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			gwError(w, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, server.RouteClusterRing+" requires GET")
			return
		}
		ring := g.Ring()
		gwJSON(w, http.StatusOK, server.RingResponse{Version: ring.Version, RouteSeed: ring.RouteSeed, Shards: ring.Shards})
	})
	mux.HandleFunc(server.RouteClusterHandoff, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			gwError(w, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, server.RouteClusterHandoff+" requires POST")
			return
		}
		var req server.HandoffRequest
		if err := decodeJSONBody(r, &req); err != nil {
			gwError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
			return
		}
		version, err := g.Handoff(r.Context(), req.Shard, req.To)
		if err != nil {
			g.gwServiceError(w, err)
			return
		}
		gwJSON(w, http.StatusOK, server.HandoffResponse{Version: version})
	})
	mux.HandleFunc(server.RouteClusterCheckpoint, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			gwError(w, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, server.RouteClusterCheckpoint+" requires POST")
			return
		}
		m, err := g.CheckpointCluster(r.Context())
		if err != nil {
			g.gwServiceError(w, err)
			return
		}
		resp := server.ClusterCheckpointResponse{RingVersion: m.RingVersion, Shards: make([]server.ClusterNodeCheckpointJSON, len(m.Shards))}
		for i, s := range m.Shards {
			resp.Shards[i] = server.ClusterNodeCheckpointJSON{Shard: s.Shard, Node: s.Node, Position: s.Position}
		}
		gwJSON(w, http.StatusOK, resp)
	})
	mux.Handle("/", api)
	return mux
}

// gwServiceError maps gateway errors onto the standard envelope: ring
// violations are the caller's fault, everything else goes through the
// shared service mapping (a backend's *client.Error keeps its own status).
func (g *Gateway) gwServiceError(w http.ResponseWriter, err error) {
	var apiErr *client.Error
	switch {
	case errors.Is(err, ErrBadRing):
		gwError(w, http.StatusBadRequest, server.CodeBadRequest, err.Error())
	case errors.As(err, &apiErr):
		gwError(w, apiErr.Status, apiErr.Code, err.Error())
	case errors.Is(err, context.Canceled):
		gwError(w, server.StatusClientClosedRequest, server.CodeCanceled, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		gwError(w, http.StatusGatewayTimeout, server.CodeTimeout, err.Error())
	case errors.Is(err, vos.ErrClosed), errors.Is(err, vos.ErrQueryUnavailable):
		gwError(w, http.StatusServiceUnavailable, server.CodeUnavailable, err.Error())
	default:
		gwError(w, http.StatusBadGateway, server.CodeInternal, err.Error())
	}
}

// decodeJSONBody strictly decodes one JSON value into out (unknown
// fields refused, trailing data refused, body capped at the ring
// document limit — gateway control-plane bodies are tiny).
func decodeJSONBody(r *http.Request, out any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, MaxRingBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return fmt.Errorf("bad JSON body: %v", err)
	}
	if dec.More() {
		return errors.New("bad JSON body: trailing data")
	}
	return nil
}

// gwJSON and gwError mirror the server package's response helpers (which
// are unexported) for the gateway-only routes, emitting the same
// Content-Type and error envelope so clients see one uniform protocol.
func gwJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", server.ContentTypeJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func gwError(w http.ResponseWriter, status int, code, msg string) {
	gwJSON(w, status, server.ErrorEnvelope{Error: server.ErrorBody{Code: code, Message: msg}})
}
