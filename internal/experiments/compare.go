package experiments

import (
	"fmt"

	"github.com/vossketch/vos/internal/metrics"
	"github.com/vossketch/vos/internal/similarity"
)

// Compare runs one dataset through every method and reports the per-pair
// relative-error distribution of ŝ (mean = AAPE, plus p50/p90/p99/max) —
// the deep-dive view behind the single-number figures, used to check that
// a method's advantage is not an artifact of a few outlier pairs.
func Compare(opts Options) (*Table, error) {
	opts = opts.normalized()
	ds := BuildDataset(opts.profile(), opts)
	pairs, median, err := TrackedPairs(ds, opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "compare",
		Title:  fmt.Sprintf("Per-pair relative error of ŝ on %s (k = %d)", opts.Dataset, opts.K32),
		Header: []string{"method", "mean(AAPE)", "p50", "p90", "p99", "max"},
	}
	t.AddNote("dataset %s: %d elements (%d deletions), %d tracked pairs (median s = %d); seed %d",
		ds.Profile.Name, len(ds.Edges), ds.Deletes, len(pairs), median, opts.Seed)

	for _, method := range similarity.Methods {
		reports, err := ComparePairs(ds, pairs, method, opts)
		if err != nil {
			return nil, err
		}
		truth := make([]float64, len(reports))
		est := make([]float64, len(reports))
		for i, r := range reports {
			truth[i] = float64(r.TrueS)
			est[i] = r.EstS
		}
		rel := metrics.RelativeErrors(truth, est)
		sum, err := metrics.Summarize(rel)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", method, err)
		}
		t.AddRow(
			method,
			fmt.Sprintf("%.4f", sum.Mean),
			fmt.Sprintf("%.4f", sum.P50),
			fmt.Sprintf("%.4f", sum.P90),
			fmt.Sprintf("%.4f", sum.P99),
			fmt.Sprintf("%.4f", sum.Max),
		)
	}
	return t, nil
}
