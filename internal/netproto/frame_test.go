package netproto

import (
	"bytes"
	"errors"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func testEdges(n int) []stream.Edge {
	edges := make([]stream.Edge, n)
	for i := range edges {
		op := stream.Insert
		if i%3 == 0 {
			op = stream.Delete
		}
		edges[i] = stream.Edge{User: stream.User(i * 7), Item: stream.Item(i*13 + 1), Op: op}
	}
	return edges
}

func TestDataFrameRoundTrip(t *testing.T) {
	edges := testEdges(100)
	buf, err := AppendDataFrame(nil, 0xdeadbeef, 42, FlagAckRequest, edges)
	if err != nil {
		t.Fatalf("AppendDataFrame: %v", err)
	}
	f, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if f.Type != TypeData || f.Flags != FlagAckRequest || f.Session != 0xdeadbeef || f.Seq != 42 || f.Count != 100 {
		t.Fatalf("header mismatch: %+v", f)
	}
	got, err := f.DecodeEdges()
	if err != nil {
		t.Fatalf("DecodeEdges: %v", err)
	}
	if len(got) != len(edges) {
		t.Fatalf("decoded %d edges, want %d", len(got), len(edges))
	}
	for i := range got {
		if got[i] != edges[i] {
			t.Fatalf("edge %d: got %+v want %+v", i, got[i], edges[i])
		}
	}
}

func TestZeroEdgeDataFrame(t *testing.T) {
	buf, err := AppendDataFrame(nil, 1, 9, 0, nil)
	if err != nil {
		t.Fatalf("AppendDataFrame: %v", err)
	}
	if len(buf) != HeaderSize {
		t.Fatalf("zero-edge frame is %d bytes, want %d", len(buf), HeaderSize)
	}
	f, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	edges, err := f.DecodeEdges()
	if err != nil || len(edges) != 0 {
		t.Fatalf("DecodeEdges: %v (%d edges)", err, len(edges))
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	want := Ack{Session: 7, EchoSeq: 123, Highest: 130, Applied: 120, Gaps: 3, Replays: 2}
	buf := AppendAckFrame(nil, want)
	f, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if f.Type != TypeAck {
		t.Fatalf("type %d, want ack", f.Type)
	}
	got, err := f.DecodeAck()
	if err != nil {
		t.Fatalf("DecodeAck: %v", err)
	}
	if got != want {
		t.Fatalf("ack mismatch: got %+v want %+v", got, want)
	}
}

func TestAppendDataFrameRefusesOversized(t *testing.T) {
	// Max-width elements: ~10 bytes each, so 10k edges blow the 64 KiB cap.
	edges := make([]stream.Edge, 10_000)
	for i := range edges {
		edges[i] = stream.Edge{User: 1<<63 - 1, Item: 1<<64 - 1, Op: stream.Insert}
	}
	if _, err := AppendDataFrame(nil, 1, 1, 0, edges); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized frame: got %v, want ErrBadFrame", err)
	}
}

func TestDecodeFrameRejections(t *testing.T) {
	good, err := AppendDataFrame(nil, 5, 6, 0, testEdges(4))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func([]byte)) []byte {
		b := bytes.Clone(good)
		fn(b)
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:HeaderSize-1],
		"truncated body": good[:len(good)-1],
		"oversized":      make([]byte, MaxFrameSize+1),
		"bad magic":      mutate(func(b []byte) { b[0] = 'X' }),
		"bad version":    mutate(func(b []byte) { b[8] = 99 }),
		"bad type":       mutate(func(b []byte) { b[9] = 77 }),
		"forged count":   mutate(func(b []byte) { b[28], b[29], b[30], b[31] = 0xff, 0xff, 0xff, 0xff }),
		"trailing junk":  append(bytes.Clone(good), 0x00),
		"short ack":      AppendAckFrame(nil, Ack{})[:HeaderSize+ackPayloadSize-1],
		"ack with count": mutate(func(b []byte) { b[9] = TypeAck }),
	}
	for name, data := range cases {
		f, err := DecodeFrame(data)
		if err == nil {
			// Forged lengths that survive the header check must still die in
			// the payload decoder, never panic or mis-decode.
			if _, err2 := f.DecodeEdges(); err2 == nil {
				t.Errorf("%s: accepted end to end", name)
			}
			continue
		}
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: error %v is not ErrBadFrame", name, err)
		}
	}
}

func TestDecodeWrongTypeHelpers(t *testing.T) {
	data, _ := AppendDataFrame(nil, 1, 1, 0, testEdges(2))
	df, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.DecodeAck(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("DecodeAck on data frame: %v", err)
	}
	af, err := DecodeFrame(AppendAckFrame(nil, Ack{Session: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.DecodeEdges(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("DecodeEdges on ack frame: %v", err)
	}
}
