package gen

import (
	"strings"
	"testing"

	"github.com/vossketch/vos/internal/stream"
)

func TestLoadSNAP(t *testing.T) {
	in := `# Directed graph: ./youtube-links.txt
# Nodes: 5 Edges: 4
1	10
1	11
2	10
3	12
`
	edges, err := LoadSNAP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 4 {
		t.Fatalf("got %d edges", len(edges))
	}
	if edges[0] != (stream.Edge{User: 1, Item: 10, Op: stream.Insert}) {
		t.Errorf("first edge %v", edges[0])
	}
	if err := stream.Validate(edges); err != nil {
		t.Errorf("snap load infeasible: %v", err)
	}
}

func TestLoadSNAPDropsDuplicates(t *testing.T) {
	in := "1 10\n1 10\n1 11\n"
	edges, err := LoadSNAP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Errorf("duplicates kept: %d edges", len(edges))
	}
}

func TestLoadSNAPSkipsCommentsAndBlanks(t *testing.T) {
	in := "# c\n% matrix-market style\n\n 7 8 \n"
	edges, err := LoadSNAP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 || edges[0].User != 7 {
		t.Errorf("edges = %v", edges)
	}
}

func TestLoadSNAPErrors(t *testing.T) {
	for name, in := range map[string]string{
		"one field": "42\n",
		"bad user":  "x 1\n",
		"bad item":  "1 y\n",
	} {
		if _, err := LoadSNAP(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestLoadSNAPExtraColumnsTolerated(t *testing.T) {
	// Some SNAP exports carry a weight/timestamp third column.
	edges, err := LoadSNAP(strings.NewReader("1 2 1679000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1 {
		t.Errorf("edges = %v", edges)
	}
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	base := []stream.Edge{
		{User: 1, Item: 1, Op: stream.Insert},
		{User: 2, Item: 2, Op: stream.Insert},
		{User: 3, Item: 3, Op: stream.Insert},
		{User: 4, Item: 4, Op: stream.Insert},
	}
	a := Shuffle(base, 5)
	b := Shuffle(base, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different shuffle")
		}
	}
	// Original slice untouched.
	if base[0].User != 1 || base[3].User != 4 {
		t.Error("Shuffle mutated its input")
	}
	// Content preserved.
	seen := map[stream.User]bool{}
	for _, e := range a {
		seen[e.User] = true
	}
	if len(seen) != 4 {
		t.Error("shuffle lost elements")
	}
}
