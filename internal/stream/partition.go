package stream

import (
	"fmt"

	"github.com/vossketch/vos/internal/hashing"
)

// ShardOf returns the shard in [0, n) that owns user u under the given
// routing seed. It is the single routing function shared by offline
// partitioning (PartitionByUser) and online sharded ingestion
// (internal/engine): anything partitioned with the same n and seed agrees
// on ownership, so sketches built offline per partition can be merged with
// an engine's shards.
func ShardOf(u User, n int, seed uint64) int {
	if n <= 0 {
		panic(fmt.Sprintf("stream: shard count %d must be positive", n))
	}
	return int(hashing.HashToRange(uint64(u), seed, uint64(n)))
}

// PartitionByUser splits a stream into n shards by hashing the user ID,
// preserving each shard's internal order. Because all of a user's
// elements land in the same shard, every shard is itself a feasible
// stream whenever the input is, and sketches with user-keyed state
// (MinHash registers, RP samplers, cardinality counters) can be built
// per shard and combined.
//
// For VOS specifically any partition works — its merge is XOR-exact
// regardless of how edges are split (see core.VOS.Merge) — but user
// partitioning is the safe default for every method in this module.
func PartitionByUser(edges []Edge, n int, seed uint64) [][]Edge {
	if n <= 0 {
		panic(fmt.Sprintf("stream: shard count %d must be positive", n))
	}
	shards := make([][]Edge, n)
	for _, e := range edges {
		s := ShardOf(e.User, n, seed)
		shards[s] = append(shards[s], e)
	}
	return shards
}

// RoundRobin splits a stream into n shards element by element. Shards are
// NOT feasibility-preserving per user (a user's insert and delete can land
// in different shards); use it only with order-insensitive, partition-
// exact sketches such as VOS.
func RoundRobin(edges []Edge, n int) [][]Edge {
	if n <= 0 {
		panic(fmt.Sprintf("stream: shard count %d must be positive", n))
	}
	shards := make([][]Edge, n)
	for i, e := range edges {
		shards[i%n] = append(shards[i%n], e)
	}
	return shards
}

// Concat joins shards back into one stream, in shard order. Together with
// PartitionByUser it is a (reordered) permutation of the original stream.
func Concat(shards [][]Edge) []Edge {
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	out := make([]Edge, 0, total)
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}
