package main

import "testing"

func TestParsePair(t *testing.T) {
	u, v, err := parsePair("17, 42")
	if err != nil || u != 17 || v != 42 {
		t.Errorf("parsePair = %d, %d, %v", u, v, err)
	}
	for _, bad := range []string{"", "1", "1,2,3", "x,2", "1,y"} {
		if _, _, err := parsePair(bad); err == nil {
			t.Errorf("parsePair(%q) accepted", bad)
		}
	}
}
