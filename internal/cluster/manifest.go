package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// ErrBadManifest is wrapped by every DecodeManifest failure, the manifest
// analogue of ErrBadRing.
var ErrBadManifest = errors.New("cluster: bad manifest")

// Manifest records one cluster-wide checkpoint: which ring version it was
// taken under and, per cluster shard, which node held the shard and the
// WAL position its durable checkpoint acknowledged. It is what an
// operator (or a future restore path) needs to answer "what did the
// cluster durably know, and where" — the cluster analogue of the
// single-node CheckpointResponse.
type Manifest struct {
	// RingVersion is the membership version the checkpoint was taken
	// under; must be ≥ 1.
	RingVersion uint64 `json:"ring_version"`
	// RouteSeed is the ring's routing seed, recorded so a manifest is
	// interpretable without the ring document beside it.
	RouteSeed uint64 `json:"route_seed"`
	// Shards has one row per cluster shard, indexed 0..len-1.
	Shards []ManifestShard `json:"shards"`
}

// ManifestShard is one shard's row in a cluster checkpoint.
type ManifestShard struct {
	// Shard is the cluster shard index.
	Shard int `json:"shard"`
	// Node is the backend base URL that held the shard at checkpoint
	// time.
	Node string `json:"node"`
	// Position is the backend's durable WAL position acknowledged by its
	// /v1/checkpoint.
	Position uint64 `json:"position"`
}

// Validate checks the structural invariants a usable manifest must hold.
func (m *Manifest) Validate() error {
	if m.RingVersion < 1 {
		return fmt.Errorf("%w: ring_version must be ≥ 1, got %d", ErrBadManifest, m.RingVersion)
	}
	if len(m.Shards) < 1 || len(m.Shards) > MaxShards {
		return fmt.Errorf("%w: shard count %d outside [1, %d]", ErrBadManifest, len(m.Shards), MaxShards)
	}
	for i, s := range m.Shards {
		if s.Shard != i {
			return fmt.Errorf("%w: row %d has shard index %d (rows must be dense and ordered)", ErrBadManifest, i, s.Shard)
		}
		if s.Node == "" {
			return fmt.Errorf("%w: shard %d has an empty node", ErrBadManifest, i)
		}
	}
	return nil
}

// EncodeManifest serializes a validated manifest as indented JSON.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeManifest parses and validates a manifest document under the same
// guards as DecodeRing: size cap before any allocation, unknown fields
// refused, every failure wrapping ErrBadManifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) > MaxRingBytes {
		return nil, fmt.Errorf("%w: document is %d bytes, cap %d", ErrBadManifest, len(data), MaxRingBytes)
	}
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after document", ErrBadManifest)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads and decodes the manifest at path.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("manifest %s: %w", path, err)
	}
	return m, nil
}

// SaveManifest writes the manifest to path atomically.
func SaveManifest(path string, m *Manifest) error {
	data, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}
