// Parallel sharded ingestion with exact merge.
//
// VOS state is pure parity: the shared bit array of a stream equals the
// XOR of the arrays of ANY partition of that stream, and the cardinality
// counters add. This example exploits that for parallel ingestion — the
// pattern a high-throughput deployment uses:
//
//  1. split the event stream across W workers (round-robin: VOS does not
//     care how edges are split),
//  2. each worker builds a private sketch with the same Config — no
//     locks, no sharing,
//  3. merge the W sketches; the result is bit-identical to a sketch that
//     consumed the whole stream sequentially.
//
// The program verifies the bit-identity and reports the speedup.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/vossketch/vos"
)

func main() {
	cfg := vos.Config{MemoryBits: 1 << 24, SketchBits: 6400, Seed: 99}

	// A synthetic day of traffic: 2M subscription events with 20%
	// unsubscriptions, generated feasibly.
	fmt.Println("generating 2,000,000 events…")
	edges := generate(2_000_000, 50_000, 0.2)

	// Sequential reference.
	seq := vos.MustNew(cfg)
	t0 := time.Now()
	for _, e := range edges {
		seq.Process(e)
	}
	seqTime := time.Since(t0)

	// Sharded: one worker per CPU.
	workers := runtime.GOMAXPROCS(0)
	shards := vos.RoundRobin(edges, workers)
	sketches := make([]*vos.Sketch, workers)
	t0 = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sk := vos.MustNew(cfg)
			for _, e := range shards[w] {
				sk.Process(e)
			}
			sketches[w] = sk
		}(w)
	}
	wg.Wait()
	merged := sketches[0]
	for _, sk := range sketches[1:] {
		if err := merged.Merge(sk); err != nil {
			log.Fatal(err)
		}
	}
	parTime := time.Since(t0)

	// The merged sketch must be bit-identical to the sequential one.
	a, b := seq.Stats(), merged.Stats()
	fmt.Printf("\nsequential: %v   sharded(%d workers)+merge: %v   speedup %.1fx\n",
		seqTime.Round(time.Millisecond), workers, parTime.Round(time.Millisecond),
		seqTime.Seconds()/parTime.Seconds())
	fmt.Printf("array ones: sequential %d, merged %d  (β %.5f vs %.5f)\n",
		a.OnesCount, b.OnesCount, a.Beta, b.Beta)
	if a != b {
		log.Fatal("MERGE MISMATCH — sketches differ")
	}
	q1, q2 := seq.Query(1, 2), merged.Query(1, 2)
	if q1 != q2 {
		log.Fatal("query mismatch after merge")
	}
	fmt.Printf("query(1,2): ŝ = %.1f, Ĵ = %.3f — identical on both sketches ✓\n",
		q1.Common, q1.Jaccard)
}

// generate builds a feasible stream: random subscriptions across users
// and items, with delFrac of events unsubscribing a live edge.
func generate(n, users int, delFrac float64) []vos.Edge {
	rng := rand.New(rand.NewSource(3))
	type key struct {
		u vos.User
		i vos.Item
	}
	liveList := make([]key, 0, n)
	liveIdx := make(map[key]int, n)
	out := make([]vos.Edge, 0, n)
	for len(out) < n {
		if len(liveList) > 0 && rng.Float64() < delFrac {
			pos := rng.Intn(len(liveList))
			k := liveList[pos]
			last := len(liveList) - 1
			liveList[pos] = liveList[last]
			liveIdx[liveList[pos]] = pos
			liveList = liveList[:last]
			delete(liveIdx, k)
			out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Delete})
			continue
		}
		k := key{vos.User(rng.Intn(users)), vos.Item(rng.Uint64() % 1_000_000)}
		if _, dup := liveIdx[k]; dup {
			continue
		}
		liveIdx[k] = len(liveList)
		liveList = append(liveList, k)
		out = append(out, vos.Edge{User: k.u, Item: k.i, Op: vos.Insert})
	}
	return out
}
