// Package experiments contains the harness that regenerates every figure
// of the paper's evaluation (§V) plus the repository's ablations:
// workload construction, the memory-equalised method lineup, runtime and
// accuracy runners, and plain-text/CSV rendering of the resulting tables.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: the rows the corresponding paper
// figure plots.
type Table struct {
	// ID is the experiment identifier ("fig2a", "abl-lambda", …).
	ID string
	// Title describes the experiment, mirroring the figure caption.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the cells, already formatted.
	Rows [][]string
	// Notes carry workload provenance (profile, scale, seed, pair
	// counts) so results are interpretable on their own.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a provenance note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderJSON writes the table as a machine-readable JSON document: the id,
// title, notes, and one object per row keyed by the header names. This is
// the format the checked-in bench trajectory (bench/*.json) and any CI
// regression tooling consume; unlike the text renderers it round-trips
// through jq without parsing column widths.
func (t *Table) RenderJSON(w io.Writer) error {
	rows := make([]map[string]string, len(t.Rows))
	for i, row := range t.Rows {
		m := make(map[string]string, len(row))
		for j, c := range row {
			if j < len(t.Header) {
				m[t.Header[j]] = c
			}
		}
		rows[i] = m
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID    string              `json:"id"`
		Title string              `json:"title"`
		Notes []string            `json:"notes,omitempty"`
		Rows  []map[string]string `json:"rows"`
	}{t.ID, t.Title, t.Notes, rows})
}

// RenderCSV writes the table as CSV (header + rows; notes as # comments).
func (t *Table) RenderCSV(w io.Writer) error {
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			escaped[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(escaped, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
