// A similarity query service on the sharded engine: N ingest shards
// absorb the event stream while an HTTP API serves similarity queries
// from the engine's exactly merged snapshot — the deployment shape the
// paper's O(1)-update / O(k)-query split is designed for, scaled past one
// core by vos.Engine.
//
// Endpoints:
//
//	POST /event?user=U&item=I&op=+|-   ingest one subscription event
//	GET  /similarity?u=U&v=V           estimate s_uv and Jaccard
//	POST /topk                         rank candidates by similarity to a user
//	GET  /stats                        merged sketch state (β, memory, users)
//	GET  /shards                       per-shard ingest counters and load
//	POST /checkpoint                   persist the merged sketch + WAL position
//
// /topk takes a JSON body {"user": U, "candidates": [...], "n": N} and
// returns the n candidates most similar to the user, best first, served by
// the engine's materialized top-K path: the probe's virtual sketch is
// recovered once, candidates stream against the packed bits in parallel,
// and hot users' position tables come from the engine's shared cache.
//
// The engine is durable (vos.OpenEngine): accepted events are written to a
// WAL before they are acknowledged, POST /checkpoint persists the merged
// sketch and truncates the covered WAL prefix, and startup is restart-safe
// — it recovers checkpoint + WAL suffix from the data directory, so a
// crashed or restarted query server resumes without re-consuming the
// stream from origin.
//
// The similarity handler flushes the engine first, trading a little query
// latency for read-your-writes consistency — the right default for a demo
// and for low-write services; high-write deployments would skip the flush
// and serve from a bounded-staleness snapshot (EngineConfig.SnapshotMaxLag).
//
// The program starts the server on a local port, drives a simulated
// workload against it over HTTP, checkpoints, hard-stops the server
// mid-stream (simulating a crash), restarts it from the same directory,
// and shows the recovered answers match — so `go run
// ./examples/similarityserver` is self-contained and exits.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"github.com/vossketch/vos"
)

// server wraps the sharded engine with the HTTP API.
type server struct {
	engine *vos.Engine
}

func (s *server) handleEvent(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	u, errU := parseID(q.Get("user"))
	i, errI := parseID(q.Get("item"))
	if errU != nil || errI != nil {
		http.Error(w, "user and item must be unsigned integers", http.StatusBadRequest)
		return
	}
	var op vos.Op
	switch q.Get("op") {
	case "+", "":
		op = vos.Insert
	case "-":
		op = vos.Delete
	default:
		http.Error(w, "op must be + or -", http.StatusBadRequest)
		return
	}
	if err := s.engine.Process(vos.Edge{User: vos.User(u), Item: vos.Item(i), Op: op}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleSimilarity(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	u, errU := parseID(q.Get("u"))
	v, errV := parseID(q.Get("v"))
	if errU != nil || errV != nil {
		http.Error(w, "u and v must be unsigned integers", http.StatusBadRequest)
		return
	}
	// Read-your-writes: apply everything accepted so far, then answer
	// from the exact merged snapshot.
	s.engine.Flush()
	est := s.engine.Query(vos.User(u), vos.User(v))
	writeJSON(w, map[string]any{
		"common_items":  est.CommonClamped,
		"jaccard":       est.Jaccard,
		"cardinality_u": est.CardinalityU,
		"cardinality_v": est.CardinalityV,
		"saturated":     est.Saturated,
	})
}

// topkRequest is the POST /topk body.
type topkRequest struct {
	User       uint64   `json:"user"`
	Candidates []uint64 `json:"candidates"`
	N          int      `json:"n"`
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req topkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.N <= 0 || len(req.Candidates) == 0 {
		http.Error(w, "need n > 0 and a non-empty candidates list", http.StatusBadRequest)
		return
	}
	candidates := make([]vos.User, len(req.Candidates))
	for i, c := range req.Candidates {
		candidates[i] = vos.User(c)
	}
	s.engine.Flush() // read-your-writes, like /similarity
	top := s.engine.TopK(vos.User(req.User), candidates, req.N)
	out := make([]map[string]any, len(top))
	for i, res := range top {
		out[i] = map[string]any{
			"user":         uint64(res.User),
			"jaccard":      res.Estimate.Jaccard,
			"common_items": res.Estimate.CommonClamped,
			"saturated":    res.Estimate.Saturated,
		}
	}
	writeJSON(w, out)
}

func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	pos, err := s.engine.Checkpoint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"position": pos})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Stats()
	writeJSON(w, map[string]any{
		"memory_bits": st.MemoryBits,
		"sketch_bits": st.SketchBits,
		"beta":        st.Beta,
		"users":       st.Users,
		"shards":      s.engine.Shards(),
	})
}

func (s *server) handleShards(w http.ResponseWriter, _ *http.Request) {
	stats := s.engine.ShardStats()
	out := make([]map[string]any, len(stats))
	for i, st := range stats {
		out[i] = map[string]any{
			"shard":       st.Shard,
			"enqueued":    st.Enqueued,
			"processed":   st.Processed,
			"backlog":     st.Backlog(),
			"beta":        st.Beta,
			"users":       st.Users,
			"edges_per_s": st.EdgesPerSec,
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

func parseID(s string) (uint64, error) {
	var x uint64
	_, err := fmt.Sscanf(s, "%d", &x)
	return x, err
}

// serve starts the HTTP API for a durable engine opened from dir and
// returns the base URL plus a stop function — the restart-safe startup
// path: every launch goes through vos.OpenEngine, which recovers whatever
// checkpoint and WAL suffix the directory holds.
func serve(dir string, cfg vos.EngineConfig) (base string, stop func(closeEngine bool)) {
	eng, err := vos.OpenEngine(dir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	srv := &server{engine: eng}
	mux := http.NewServeMux()
	mux.HandleFunc("/event", srv.handleEvent)
	mux.HandleFunc("/similarity", srv.handleSimilarity)
	mux.HandleFunc("/topk", srv.handleTopK)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/shards", srv.handleShards)
	mux.HandleFunc("/checkpoint", srv.handleCheckpoint)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	return "http://" + ln.Addr().String(), func(closeEngine bool) {
		if err := httpSrv.Close(); err != nil {
			log.Fatal(err)
		}
		if closeEngine {
			if err := eng.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func main() {
	dir, err := os.MkdirTemp("", "similarityserver-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := vos.EngineConfig{
		Sketch: vos.Config{
			MemoryBits: 1 << 22,
			SketchBits: 4096,
			Seed:       3,
		},
		Shards: 4,
		// The crash below is simulated in-process (the first engine is
		// abandoned, not killed), so it cannot release the directory
		// flock a real process death would; a production deployment
		// keeps the lock enabled (the default).
		Durability: &vos.DurabilityConfig{DisableLock: true},
	}

	base, stop := serve(dir, cfg)
	fmt.Printf("similarity service listening on %s (4 ingest shards, WAL in %s)\n\n", base, dir)

	client := &http.Client{Timeout: 5 * time.Second}
	post := func(path string) string {
		resp, err := client.Post(base+path, "", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1024]byte
		n, _ := resp.Body.Read(buf[:])
		return string(buf[:n])
	}
	postJSON := func(path, body string) string {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return string(buf[:n])
	}
	event := func(user, item uint64, op string) {
		post(fmt.Sprintf("/event?user=%d&item=%d&op=%s", user, item, url.QueryEscape(op)))
	}
	get := func(path string) string {
		resp, err := client.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1024]byte
		n, _ := resp.Body.Read(buf[:])
		return string(buf[:n])
	}

	// Drive a workload over the wire: two overlapping users plus noise.
	rng := rand.New(rand.NewSource(4))
	for i := uint64(0); i < 300; i++ {
		event(1, i, "+")
	}
	for i := uint64(150); i < 450; i++ {
		event(2, i, "+")
	}
	for i := uint64(0); i < 2000; i++ { // background users
		event(100+i%50, rng.Uint64()%100000, "+")
	}
	fmt.Println("ingested 2600 events over HTTP (300 + 300 subscriptions, noise)")

	// Rank user 2 and the background users against user 1: the engine
	// recovers user 1's sketch once and streams the candidates against the
	// packed bits, so only user 2's planted 150-item overlap should rank.
	var cands strings.Builder
	cands.WriteString("2")
	for u := 100; u < 150; u++ {
		fmt.Fprintf(&cands, ",%d", u)
	}
	fmt.Println("\nPOST /topk (user 1 vs user 2 + 50 background users)")
	fmt.Println("  " + postJSON("/topk", fmt.Sprintf(`{"user":1,"candidates":[%s],"n":3}`, cands.String())))

	// Persist the merged sketch; the covered WAL prefix is truncated.
	fmt.Println("\nPOST /checkpoint")
	fmt.Println("  " + post("/checkpoint"))

	// More events after the checkpoint: user 1 unsubscribes 50 shared
	// items. These live only in the WAL suffix.
	for i := uint64(150); i < 200; i++ {
		event(1, i, "-")
	}
	fmt.Println("ingested 50 post-checkpoint unsubscriptions")
	fmt.Println("\nGET /similarity?u=1&v=2")
	before := get("/similarity?u=1&v=2")
	fmt.Println("  " + before)
	fmt.Println("  (true common items: 100, true Jaccard: 100/450 ≈ 0.222)")

	// Hard-stop the server mid-stream — no graceful engine Close — then
	// restart from the same directory. Recovery loads the checkpoint and
	// replays the 50-event WAL suffix.
	fmt.Println("\n-- simulated crash: stopping server without closing the engine --")
	stop(false)
	base, stop = serve(dir, cfg)
	fmt.Printf("-- restarted from %s --\n\n", dir)

	fmt.Println("GET /similarity?u=1&v=2 (recovered)")
	after := get("/similarity?u=1&v=2")
	fmt.Println("  " + after)
	if after == before {
		fmt.Println("  recovered answer is identical to the pre-crash answer")
	} else {
		fmt.Println("  MISMATCH with pre-crash answer:", before)
	}
	fmt.Println("GET /stats")
	fmt.Println("  " + get("/stats"))

	stop(true)
	fmt.Println("\nserver stopped (final checkpoint written on close)")
}
