package gen

import (
	"fmt"
	"math/rand"

	"github.com/vossketch/vos/internal/stream"
)

// Bipartite generates a static bipartite subscription graph matching a
// profile: user degrees follow a Zipf law with exponent UserSkew scaled so
// the total edge count hits Edges, and each subscription picks an item from
// a Zipf popularity law with exponent ItemSkew (rejecting duplicates within
// a user). The result is a deduplicated edge list in insertion form,
// shuffled into a uniformly random arrival order.
//
// Generation is deterministic in (profile, seed).
func Bipartite(p Profile, seed int64) []stream.Edge {
	if p.Users == 0 || p.Items == 0 || p.Edges == 0 {
		panic(fmt.Sprintf("gen: degenerate profile %v", p))
	}
	if p.Edges > p.Users*p.Items {
		p.Edges = p.Users * p.Items // cannot exceed the complete bipartite graph
	}
	rng := rand.New(rand.NewSource(seed))
	degrees := sampleDegrees(rng, p)
	itemDist := newZipfPicker(rng, p.Items, p.ItemSkew)

	edges := make([]stream.Edge, 0, p.Edges)
	// Small reusable set for per-user dedup; cleared between users by
	// generation counter to avoid reallocating.
	for u := uint64(0); u < p.Users; u++ {
		deg := degrees[u]
		if deg == 0 {
			continue
		}
		chosen := make(map[stream.Item]struct{}, deg)
		attempts := 0
		maxAttempts := 12 * int(deg)
		for len(chosen) < int(deg) && attempts < maxAttempts {
			it := itemDist.pick()
			attempts++
			if _, dup := chosen[it]; dup {
				continue
			}
			chosen[it] = struct{}{}
			edges = append(edges, stream.Edge{User: stream.User(u), Item: it, Op: stream.Insert})
		}
		// Rejection starved (tiny item universe and/or huge degree):
		// fill deterministically with a random linear probe.
		if len(chosen) < int(deg) {
			start := stream.Item(rng.Int63n(int64(p.Items)))
			for it := uint64(0); it < p.Items && len(chosen) < int(deg); it++ {
				cand := stream.Item((uint64(start) + it) % p.Items)
				if _, dup := chosen[cand]; dup {
					continue
				}
				chosen[cand] = struct{}{}
				edges = append(edges, stream.Edge{User: stream.User(u), Item: cand, Op: stream.Insert})
			}
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

// sampleDegrees draws a Zipf degree per user and rescales so the total is
// close to p.Edges, with every degree clamped to [1, p.Items].
func sampleDegrees(rng *rand.Rand, p Profile) []uint64 {
	z := rand.NewZipf(rng, p.UserSkew, 1, p.Items-1)
	raw := make([]uint64, p.Users)
	var total uint64
	for u := range raw {
		raw[u] = z.Uint64() + 1
		total += raw[u]
	}
	scale := float64(p.Edges) / float64(total)
	var sum uint64
	for u := range raw {
		d := uint64(float64(raw[u])*scale + 0.5)
		if d < 1 {
			d = 1
		}
		if d > p.Items {
			d = p.Items
		}
		raw[u] = d
		sum += d
	}
	// Nudge the total toward the target by distributing the residual over
	// random users; keeps E within a fraction of a percent of the goal.
	for sum < p.Edges {
		u := rng.Intn(len(raw))
		if raw[u] < p.Items {
			raw[u]++
			sum++
		}
	}
	for sum > p.Edges && sum > uint64(len(raw)) {
		u := rng.Intn(len(raw))
		if raw[u] > 1 {
			raw[u]--
			sum--
		}
	}
	return raw
}

// zipfPicker draws items with Zipf-distributed popularity. A fixed random
// relabeling decouples popularity rank from item ID so that popular items
// are spread across the ID space (matters only for hash quality tests, but
// costs nothing).
type zipfPicker struct {
	z      *rand.Zipf
	n      uint64
	offset uint64
	mult   uint64
}

func newZipfPicker(rng *rand.Rand, n uint64, skew float64) *zipfPicker {
	if skew <= 1 {
		skew = 1.0001 // rand.Zipf requires s > 1
	}
	return &zipfPicker{
		z:      rand.NewZipf(rng, skew, 1, n-1),
		n:      n,
		offset: rng.Uint64() % n,
		mult:   largestCoprimeOdd(n),
	}
}

// pick returns a Zipf-ranked item relabeled by an affine map that is a
// bijection on [0, n) (mult is odd and coprime checks are not needed for a
// bijection modulo n when gcd(mult, n)=1; largestCoprimeOdd guarantees it).
func (zp *zipfPicker) pick() stream.Item {
	r := zp.z.Uint64()
	return stream.Item((r*zp.mult + zp.offset) % zp.n)
}

// largestCoprimeOdd returns an odd multiplier coprime with n.
func largestCoprimeOdd(n uint64) uint64 {
	for m := n/2 | 1; ; m += 2 {
		if gcd(m, n) == 1 {
			return m
		}
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
