// Package unigraph implements the extension the paper claims in §II:
// "we focus on bipartite graphs, while our method can be easily extended
// to regular graphs". In a regular (unipartite) graph stream, elements are
// user-user edges (u, v, ±) — follows/unfollows between members — and the
// similarity of interest is the Jaccard coefficient of the two users'
// *neighbor sets*:
//
//	J(N(u), N(v)) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|,
//
// the standard structural-equivalence signal (people who follow the same
// accounts). The reduction to the bipartite sketch is exactly the one the
// paper gestures at: each undirected edge (u, v) is two subscriptions —
// user u subscribes to "item" v and user v subscribes to "item" u — so one
// graph element becomes two O(1) VOS updates and everything else (queries,
// estimators, β-correction, merging) carries over unchanged.
//
// For directed graphs, construct with Directed(true): an edge (u, v) is
// then only u subscribing to v, and similarity compares out-neighborhoods.
package unigraph
