package engine

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/stream"
	"github.com/vossketch/vos/internal/wal"
)

// fakeClock is a settable clock for deterministic rotation tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// windowConfig builds a windowed engine config with a fake clock pinned
// inside the first bucket, so rotation happens only when the test says so.
func windowConfig(shards, buckets int, clk *fakeClock) Config {
	return Config{
		Sketch: testConfig(),
		Shards: shards,
		Window: &WindowConfig{
			Buckets:        buckets,
			BucketDuration: time.Second,
			Now:            clk.Now,
		},
		FlushInterval: -1, // no background linger: rotation fully test-driven
	}
}

// windowStream cuts a feasible stream into spans, one per bucket interval.
func windowStream(n, spans int, seed int64) [][]stream.Edge {
	edges := feasibleStream(n, 40, 0.25, seed)
	out := make([][]stream.Edge, spans)
	per := len(edges) / spans
	for i := 0; i < spans; i++ {
		lo, hi := i*per, (i+1)*per
		if i == spans-1 {
			hi = len(edges)
		}
		out[i] = edges[lo:hi]
	}
	return out
}

// TestEngineWindowParity is the tentpole bar at the engine layer: after
// any sequence of ingests and rotations, a K-shard windowed engine's
// serialized live view is bit-identical to a fresh single sketch built
// from only the in-window edges — for 1, 2, and 4 shards.
func TestEngineWindowParity(t *testing.T) {
	const buckets = 3
	spans := windowStream(6000, 8, 11)
	for _, shards := range []int{1, 2, 4} {
		base := time.Unix(1000, 0)
		clk := newFakeClock(base.Add(100 * time.Millisecond))
		e := MustNew(windowConfig(shards, buckets, clk))

		// inWindow[k] holds the edges attributed to the k-th live bucket.
		var inWindow [][]stream.Edge = make([][]stream.Edge, buckets)
		for span, edges := range spans {
			if err := e.ProcessBatch(edges); err != nil {
				t.Fatal(err)
			}
			inWindow[buckets-1] = append(inWindow[buckets-1], edges...)
			e.Flush()

			got, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			fresh := core.MustNew(testConfig())
			for _, be := range inWindow {
				for _, ed := range be {
					fresh.Process(ed)
				}
			}
			want, err := fresh.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("shards=%d span=%d: windowed engine bytes diverge from fresh in-window sketch", shards, span)
			}
			// Spot-check the query path agrees too.
			if g, w := e.Query(1, 2), fresh.Query(1, 2); g != w {
				t.Fatalf("shards=%d span=%d: Query(1,2) = %+v, want %+v", shards, span, g, w)
			}
			if g, w := e.Cardinality(3), fresh.Cardinality(3); g != w {
				t.Fatalf("shards=%d span=%d: Cardinality(3) = %d, want %d", shards, span, g, w)
			}

			// Advance one bucket boundary via the wall-clock path: bump the
			// fake clock past the end and let a query-side poll rotate.
			clk.Set(base.Add(time.Duration(span+1)*time.Second + 100*time.Millisecond))
			info, ok := e.WindowInfo()
			if !ok {
				t.Fatal("WindowInfo not available on a windowed engine")
			}
			if want := base.Add(time.Duration(span+2) * time.Second); !info.End.Equal(want) {
				t.Fatalf("shards=%d span=%d: window end = %v, want %v", shards, span, info.End, want)
			}
			copy(inWindow, inWindow[1:])
			inWindow[buckets-1] = nil
		}
		st := e.Stats()
		if st.WindowBuckets != buckets || st.WindowSeconds != float64(buckets) {
			t.Fatalf("stats window metadata = (%v s, %d buckets), want (%d s, %d)",
				st.WindowSeconds, st.WindowBuckets, buckets, buckets)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineWindowClockSkew pins skew handling: event times that jump
// backwards never unwind the window, and late edges land in the current
// bucket rather than vanishing.
func TestEngineWindowClockSkew(t *testing.T) {
	clk := newFakeClock(time.Unix(1000, 100))
	e := MustNew(windowConfig(2, 4, clk))
	defer e.Close()

	if err := e.ProcessBatch(feasibleStream(500, 20, 0, 21)); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	info, _ := e.WindowInfo()

	// Skewed past timestamps: no-ops.
	if n := e.AdvanceWindowTo(time.Unix(999, 0)); n != 0 {
		t.Fatalf("backwards advance rotated %d times", n)
	}
	if n := e.AdvanceWindowTo(info.End.Add(-time.Nanosecond)); n != 0 {
		t.Fatalf("intra-bucket advance rotated %d times", n)
	}
	after, _ := e.WindowInfo()
	if !after.End.Equal(info.End) || after.Rotations != info.Rotations {
		t.Fatalf("window moved under skewed timestamps: %+v -> %+v", info, after)
	}

	// A late edge (the clock never advanced) still counts.
	before := e.Cardinality(1)
	if err := e.Process(stream.Edge{User: 1, Item: 9999, Op: stream.Insert}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if got := e.Cardinality(1); got != before+1 {
		t.Fatalf("late edge lost: cardinality %d -> %d", before, got)
	}

	// Event time far in the future: the whole window ages out, reported
	// boundary count in full, and the state is empty.
	n := e.AdvanceWindowTo(time.Unix(5000, 0))
	if n < 4 {
		t.Fatalf("long-gap advance rotated %d times, want >= buckets", n)
	}
	if st := e.Stats(); st.OnesCount != 0 || st.Users != 0 {
		t.Fatalf("window not empty after aging out: %+v", st)
	}
}

// TestEngineWindowRotationRace exercises rotation racing concurrent
// ingest and TopK under -race: three writers, two top-K readers, and a
// rotator driving the clock forward. Correctness here is "no race, no
// panic, estimates stay well-formed"; exact parity is pinned by the
// deterministic tests above.
func TestEngineWindowRotationRace(t *testing.T) {
	base := time.Unix(2000, 0)
	clk := newFakeClock(base.Add(time.Millisecond))
	cfg := windowConfig(4, 2, clk)
	cfg.BatchSize = 16
	e := MustNew(cfg)

	const users = 64
	candidates := make([]stream.User, users)
	for i := range candidates {
		candidates[i] = stream.User(i)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]stream.Edge, 32)
				for i := range batch {
					batch[i] = stream.Edge{
						User: stream.User(rng.Intn(users)),
						Item: stream.Item(rng.Intn(1000)),
						Op:   stream.Insert,
					}
				}
				if err := e.ProcessBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w))
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				top := e.TopK(stream.User(0), candidates, 5)
				for _, res := range top {
					if res.Estimate.Jaccard < 0 || res.Estimate.Jaccard > 1 {
						t.Errorf("malformed estimate under rotation: %+v", res)
						return
					}
				}
				e.Cardinality(stream.User(1))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 40; i++ {
			at := base.Add(time.Duration(i) * 100 * time.Millisecond)
			clk.Set(at)
			e.AdvanceWindowTo(at)
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()
	wg.Wait()
	info, _ := e.WindowInfo()
	if info.Rotations == 0 {
		t.Fatal("rotator never rotated")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// durableWindowConfig is durableConfig plus a window.
func durableWindowConfig(dir string, shards, buckets int, clk *fakeClock) Config {
	cfg := Config{
		Sketch: testConfig(),
		Shards: shards,
		Window: &WindowConfig{
			Buckets:        buckets,
			BucketDuration: time.Second,
			Now:            clk.Now,
		},
		FlushInterval: -1,
		Durability: &DurabilityConfig{
			Dir:          dir,
			Sync:         wal.SyncEveryBatch,
			SegmentBytes: 16 << 10,
			DisableLock:  true,
		},
	}
	return cfg
}

// TestEngineWindowCheckpointRecovery: a windowed checkpoint persists the
// bucket ring, recovery keeps rotating on the persisted boundaries, and
// the recovered engine's live view is bit-identical to the original's —
// including after further rotations on both sides.
func TestEngineWindowCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(3000, 0)
	clk := newFakeClock(base.Add(time.Millisecond))
	const buckets = 3
	e := MustOpen(durableWindowConfig(dir, 2, buckets, clk))

	spans := windowStream(3000, 4, 31)
	for i, edges := range spans[:3] {
		if err := e.ProcessBatch(edges); err != nil {
			t.Fatal(err)
		}
		e.AdvanceWindowTo(base.Add(time.Duration(i+1) * time.Second))
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint WAL suffix, then "crash" (abandon, no Close).
	if err := e.ProcessBatch(spans[3]); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	want, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wantInfo, _ := e.WindowInfo()

	r := MustOpen(durableWindowConfig(dir, 2, buckets, clk))
	got, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered windowed engine diverges from the abandoned original")
	}
	gotInfo, _ := r.WindowInfo()
	if !gotInfo.End.Equal(wantInfo.End) {
		t.Fatalf("recovered window end %v, want %v", gotInfo.End, wantInfo.End)
	}

	// Both sides keep rotating: retire one bucket on each and re-compare.
	next := gotInfo.End
	e.AdvanceWindowTo(next)
	r.AdvanceWindowTo(next)
	want, _ = e.MarshalBinary()
	got, _ = r.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatal("recovered engine diverges after a post-recovery rotation")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWindowRecoveryAfterPostCheckpointRotations pins the crash
// case the checkpoint alone cannot describe: rotations and fresh ingest
// happen AFTER the checkpoint, then the engine dies. Rotation events are
// not WAL-logged, so recovery advances the rings to the present before
// replaying — the replayed suffix lands in the bucket covering now, and
// edges still inside the window MUST survive recovery (they may only
// ever retire late, never early). With the crash inside the same bucket
// the edges were ingested in, attribution is exact and recovery is
// bit-identical.
func TestEngineWindowRecoveryAfterPostCheckpointRotations(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(7000, 0)
	clk := newFakeClock(base.Add(time.Millisecond))
	const buckets = 3
	e := MustOpen(durableWindowConfig(dir, 2, buckets, clk))

	spans := windowStream(2000, 2, 71)
	// Span A in the first bucket, then checkpoint.
	if err := e.ProcessBatch(spans[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Two post-checkpoint rotations, then span B in the new current
	// bucket, then crash (abandon) with the clock inside that bucket.
	clk.Set(base.Add(2*time.Second + time.Millisecond))
	e.AdvanceWindowTo(clk.Now())
	if err := e.ProcessBatch(spans[1]); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	want, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	r := MustOpen(durableWindowConfig(dir, 2, buckets, clk))
	got, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovery after post-checkpoint rotations diverges from the abandoned original")
	}
	// The load-bearing property: span B's edges are still in the window.
	for _, ed := range spans[1][:5] {
		if r.Cardinality(ed.User) != e.Cardinality(ed.User) {
			t.Fatalf("post-checkpoint edge for user %d retired early on recovery", ed.User)
		}
	}
	// Both sides keep rotating in lockstep afterwards.
	next := base.Add(4 * time.Second)
	e.AdvanceWindowTo(next)
	r.AdvanceWindowTo(next)
	want, _ = e.MarshalBinary()
	got, _ = r.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatal("post-recovery rotation diverges")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWindowCheckpointMidRotation races Checkpoint against
// AdvanceWindowTo: the checkpoint must capture the ring entirely on one
// side of the rotation, so after aligning both engines to a common
// boundary the recovered state is bit-identical to the original.
func TestEngineWindowCheckpointMidRotation(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		base := time.Unix(4000, 0)
		clk := newFakeClock(base.Add(time.Millisecond))
		const buckets = 3
		e := MustOpen(durableWindowConfig(dir, 2, buckets, clk))

		spans := windowStream(2000, 3, int64(41+round))
		for i, edges := range spans {
			if err := e.ProcessBatch(edges); err != nil {
				t.Fatal(err)
			}
			if i < len(spans)-1 {
				e.AdvanceWindowTo(base.Add(time.Duration(i+1) * time.Second))
			}
		}
		e.Flush()

		// Race one rotation against the checkpoint.
		var wg sync.WaitGroup
		wg.Add(2)
		rotateAt := base.Add(time.Duration(len(spans)) * time.Second)
		go func() {
			defer wg.Done()
			e.AdvanceWindowTo(rotateAt)
		}()
		var ckptErr error
		go func() {
			defer wg.Done()
			_, ckptErr = e.Checkpoint()
		}()
		wg.Wait()
		if ckptErr != nil {
			t.Fatal(ckptErr)
		}

		r := MustOpen(durableWindowConfig(dir, 2, buckets, clk))
		// Align both engines past the raced boundary, then the rings must
		// cover identical time ranges with identical contents.
		sync1 := rotateAt.Add(time.Second)
		e.AdvanceWindowTo(sync1)
		r.AdvanceWindowTo(sync1)
		want, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: mid-rotation checkpoint recovery diverges", round)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineWindowCheckpointModeMismatch: a windowed engine must refuse an
// unwindowed checkpoint directory and vice versa.
func TestEngineWindowCheckpointModeMismatch(t *testing.T) {
	dir := t.TempDir()
	plain := MustOpen(durableConfig(dir, 1))
	if err := plain.ProcessBatch(feasibleStream(200, 10, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock(time.Unix(5000, 0))
	wcfg := durableWindowConfig(dir, 1, 2, clk)
	if _, err := Open(wcfg); err == nil {
		t.Fatal("windowed engine opened an unwindowed checkpoint directory")
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	dir2 := t.TempDir()
	w := MustOpen(durableWindowConfig(dir2, 1, 2, clk))
	if err := w.ProcessBatch(feasibleStream(200, 10, 0, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(durableConfig(dir2, 1)); err == nil {
		t.Fatal("unwindowed engine opened a windowed checkpoint directory")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWindowQueryLocalAfterRecovery: pre-checkpoint parity lives in
// the rotating base, so QueryLocal must answer ErrQueryUnavailable.
func TestEngineWindowQueryLocalAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock(time.Unix(6000, 0))
	e := MustOpen(durableWindowConfig(dir, 1, 2, clk))
	if err := e.ProcessBatch(feasibleStream(200, 10, 0, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r := MustOpen(durableWindowConfig(dir, 1, 2, clk))
	if _, err := r.QueryLocal(1, 2); err == nil {
		t.Fatal("QueryLocal answered on a window-recovered engine")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWindowValidation pins constructor errors.
func TestEngineWindowValidation(t *testing.T) {
	if _, err := New(Config{Sketch: testConfig(), Window: &WindowConfig{Buckets: 0, BucketDuration: time.Second}}); err == nil {
		t.Error("accepted 0 buckets")
	}
	if _, err := New(Config{Sketch: testConfig(), Window: &WindowConfig{Buckets: 2}}); err == nil {
		t.Error("accepted zero bucket duration")
	}
	e := MustNew(Config{Sketch: testConfig(), Shards: 1})
	defer e.Close()
	if e.Windowed() {
		t.Error("unwindowed engine reports Windowed")
	}
	if _, ok := e.WindowInfo(); ok {
		t.Error("unwindowed engine reports WindowInfo")
	}
	if n := e.AdvanceWindowTo(time.Now()); n != 0 {
		t.Error("unwindowed engine rotated")
	}
}
