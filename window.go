package vos

// Sliding-window similarity. VOS state is a pure XOR of its edge stream,
// so a sliding window falls out structurally: keep B time-bucketed
// sub-sketches, land edges in the current bucket, serve queries from the
// XOR-merge of all live buckets, and retire the oldest bucket by XOR-ing
// it back out of the merge — one O(sketch) pass per rotation, with no
// per-edge expiry tracking. "Who is similar to u over the last hour" is
// then an ordinary query against the merged view, and deletions inside
// the window still cost nothing, exactly as in the unwindowed sketch.
//
// Three shapes, mirroring the unwindowed lineup:
//
//   - WindowedSketch (NewWindowed) is the single-threaded bucket ring;
//   - EngineConfig.Window puts the sharded Engine in window mode, with
//     rotation coordinated across shards and windowed checkpoints;
//   - the server/client layers carry the window over the wire: timestamped
//     ingest advances event time, GET /v1/stats reports window_seconds,
//     and a query instant older than the window answers ErrOutsideWindow.

import (
	"time"

	"github.com/vossketch/vos/internal/core"
	"github.com/vossketch/vos/internal/engine"
)

// WindowedSketch is a sliding-window VOS: a ring of time-bucketed Sketch
// sub-sketches whose XOR-merge is the live view of the last
// buckets·bucketDuration of stream time. Like Sketch it is NOT safe for
// concurrent use — wire EngineConfig.Window for a concurrent, sharded
// window. Rotation is explicit (Rotate / AdvanceTo), so callers own the
// clock; the Engine adds the wall-clock and event-time plumbing on top.
//
// The merged view (Merged) is an ordinary *Sketch: Query, TopK, the
// position and recovered-sketch caches, and MarshalBinary all apply to it
// unchanged. The parity guarantee matches the unwindowed sketch's: after
// any sequence of ingests and rotations, the merged view serializes
// bit-identically to a fresh Sketch built from only the in-window edges.
type WindowedSketch = core.Window

// NewWindowed creates an empty sliding-window sketch of buckets ring
// slots of bucketDuration each, with the current bucket covering now
// (boundaries are aligned to multiples of bucketDuration since the Unix
// epoch, so independently created windows rotate on the same instants).
// buckets must be ≥ 1 — buckets == 1 is a tumbling window — and
// bucketDuration must be positive.
func NewWindowed(cfg Config, buckets int, bucketDuration time.Duration) (*WindowedSketch, error) {
	return core.NewWindow(cfg, buckets, bucketDuration, time.Now())
}

// NewWindowedAt is NewWindowed with an explicit current-bucket end
// instant, taken verbatim — for deterministic tests and for restoring
// persisted boundaries.
func NewWindowedAt(cfg Config, buckets int, bucketDuration time.Duration, end time.Time) (*WindowedSketch, error) {
	return core.NewWindowAt(cfg, buckets, bucketDuration, end)
}

// UnmarshalWindowed decodes a window serialized with
// WindowedSketch.MarshalBinary, rebuilding the merged view from the
// persisted buckets.
func UnmarshalWindowed(data []byte) (*WindowedSketch, error) {
	return core.UnmarshalWindow(data)
}

// WindowConfig is EngineConfig.Window: setting it puts the Engine in
// sliding-window mode. Each shard keeps its own bucket ring; rotation is
// coordinated across shards under an engine-level lock so query snapshots
// and checkpoints never observe half a rotation, and checkpoints persist
// per-bucket state so a recovered engine keeps retiring buckets on the
// boundaries it was persisted with.
type WindowConfig = engine.WindowConfig

// WindowInfo describes an engine's live window: bucket count and
// duration, the inclusive start and exclusive end of the retained time
// range, and the rotation count. From Engine.WindowInfo or the Windowed
// service capability.
type WindowInfo = engine.WindowInfo

// ErrNoWindow is returned by window operations (the Windowed capability's
// methods) on a service whose backing engine has no window configured.
var ErrNoWindow = engine.ErrNoWindow

// ErrOutsideWindow reports a query instant that predates the live window:
// the edges that would answer it have been retired and exist nowhere in
// the engine. Remote callers see it as the "outside_window" envelope code,
// which the client maps back onto this sentinel.
var ErrOutsideWindow = engine.ErrOutsideWindow
