package exact

import (
	"fmt"

	"github.com/vossketch/vos/internal/stream"
)

// PairTracker maintains the exact common-item count s_uv of a fixed set of
// tracked pairs incrementally: O(pairs touching u) per stream element
// instead of O(|S_u| + |S_v|) per query. The experiment harness queries
// every tracked pair at every checkpoint, so incremental maintenance keeps
// ground-truth cost from dominating the runs.
type PairTracker struct {
	store  *Store
	pairs  []Pair
	counts []int
	// byUser maps a user to the indices of tracked pairs containing it.
	byUser map[stream.User][]int
}

// NewPairTracker builds a tracker over the given pairs, starting from an
// empty graph. Duplicate pairs are rejected.
func NewPairTracker(pairs []Pair) (*PairTracker, error) {
	t := &PairTracker{
		store:  NewStore(),
		pairs:  make([]Pair, len(pairs)),
		counts: make([]int, len(pairs)),
		byUser: make(map[stream.User][]int),
	}
	seen := make(map[Pair]struct{}, len(pairs))
	for idx, p := range pairs {
		p = MakePair(p.U, p.V)
		if _, dup := seen[p]; dup {
			return nil, fmt.Errorf("exact: duplicate tracked pair (%d, %d)", p.U, p.V)
		}
		seen[p] = struct{}{}
		t.pairs[idx] = p
		t.byUser[p.U] = append(t.byUser[p.U], idx)
		t.byUser[p.V] = append(t.byUser[p.V], idx)
	}
	return t, nil
}

// Apply folds one element into the tracker and its underlying store.
func (t *PairTracker) Apply(e stream.Edge) error {
	// Count updates look only at the partner's membership, which this
	// element (a mutation of e.User's set) cannot affect, so applying to
	// the store first is safe and lets infeasible elements fail before
	// any count is touched.
	delta := 1
	if e.Op == stream.Delete {
		delta = -1
	}
	// Validate first so counts stay consistent on infeasible input.
	if err := t.store.Apply(e); err != nil {
		return err
	}
	for _, idx := range t.byUser[e.User] {
		p := t.pairs[idx]
		partner := p.U
		if partner == e.User {
			partner = p.V
		}
		if t.store.Has(partner, e.Item) {
			t.counts[idx] += delta
		}
	}
	return nil
}

// MustApply panics on infeasible elements.
func (t *PairTracker) MustApply(e stream.Edge) {
	if err := t.Apply(e); err != nil {
		panic(err)
	}
}

// Store exposes the underlying exact store (cardinalities, item sets).
func (t *PairTracker) Store() *Store { return t.store }

// Pairs returns the tracked pairs in registration order.
func (t *PairTracker) Pairs() []Pair { return t.pairs }

// CommonItems returns the maintained s_uv of tracked pair idx.
func (t *PairTracker) CommonItems(idx int) int { return t.counts[idx] }

// Jaccard returns the exact Jaccard of tracked pair idx.
func (t *PairTracker) Jaccard(idx int) float64 {
	p := t.pairs[idx]
	inter := t.counts[idx]
	union := t.store.Cardinality(p.U) + t.store.Cardinality(p.V) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
