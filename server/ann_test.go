package server_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/vossketch/vos"
	"github.com/vossketch/vos/client"
	"github.com/vossketch/vos/server"
)

// annEngineConfig is testEngineConfig plus the approximate top-K index,
// banded loosely enough for the tiny test sketches.
func annEngineConfig() vos.EngineConfig {
	cfg := testEngineConfig()
	cfg.ANN = &vos.ANNConfig{Bands: 16, Rows: 8}
	return cfg
}

// TestTopKModeANN: mode=ann over the wire answers candidates-free and
// bit-identically to the in-process Engine.TopKApprox, both via the raw
// endpoint and via client.TopKApprox.
func TestTopKModeANN(t *testing.T) {
	ctx := context.Background()
	eng, err := vos.NewEngine(annEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	cl := client.New(ts.URL, client.Options{})
	t.Cleanup(func() {
		cl.Close()
		ts.Close()
		eng.Close()
	})

	if err := cl.Ingest(ctx, feasibleStream(12_000, 80, 0.3, 5)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	for u := vos.User(0); u < 10; u++ {
		got, err := cl.TopKApprox(ctx, u, 5)
		if err != nil {
			t.Fatalf("TopKApprox(%d): %v", u, err)
		}
		want, err := eng.TopKApprox(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopKApprox(%d) over the wire %+v, in-process %+v", u, got, want)
		}
	}
}

// TestTopKModeErrors pins the mode-field error envelope: ann+candidates
// and unknown modes are bad_request; mode=ann against an engine without
// the index, or a service without the ApproxTopK extension, is 501
// unsupported.
func TestTopKModeErrors(t *testing.T) {
	eng, err := vos.NewEngine(annEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(server.New(vos.NewEngineService(eng), server.Options{}))
	defer ts.Close()

	status, code := errorCode(t, http.MethodPost, ts.URL+server.RouteTopK, server.ContentTypeJSON,
		`{"user":1,"n":5,"mode":"ann","candidates":[2,3]}`)
	if status != http.StatusBadRequest || code != server.CodeBadRequest {
		t.Fatalf("ann with candidates: got %d/%s, want 400/%s", status, code, server.CodeBadRequest)
	}
	status, code = errorCode(t, http.MethodPost, ts.URL+server.RouteTopK, server.ContentTypeJSON,
		`{"user":1,"n":5,"mode":"fuzzy"}`)
	if status != http.StatusBadRequest || code != server.CodeBadRequest {
		t.Fatalf("unknown mode: got %d/%s, want 400/%s", status, code, server.CodeBadRequest)
	}

	// An engine without Config.ANN supports the extension interface but not
	// the index: ErrNoANN must surface as 501 unsupported.
	plain, err := vos.NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	tsPlain := httptest.NewServer(server.New(vos.NewEngineService(plain), server.Options{}))
	defer tsPlain.Close()
	status, code = errorCode(t, http.MethodPost, tsPlain.URL+server.RouteTopK, server.ContentTypeJSON,
		`{"user":1,"n":5,"mode":"ann"}`)
	if status != http.StatusNotImplemented || code != server.CodeUnsupported {
		t.Fatalf("engine without ANN: got %d/%s, want 501/%s", status, code, server.CodeUnsupported)
	}

	// A service that does not implement vos.ApproxTopK at all (the wrapper
	// narrows the method set to SimilarityService).
	narrowed := struct{ vos.SimilarityService }{vos.NewEngineService(eng)}
	tsNarrow := httptest.NewServer(server.New(narrowed, server.Options{}))
	defer tsNarrow.Close()
	status, code = errorCode(t, http.MethodPost, tsNarrow.URL+server.RouteTopK, server.ContentTypeJSON,
		`{"user":1,"n":5,"mode":"ann"}`)
	if status != http.StatusNotImplemented || code != server.CodeUnsupported {
		t.Fatalf("non-ApproxTopK service: got %d/%s, want 501/%s", status, code, server.CodeUnsupported)
	}

	// client.TopKApprox surfaces the typed code for callers that probe.
	cl := client.New(tsNarrow.URL, client.Options{})
	defer cl.Close()
	_, err = cl.TopKApprox(context.Background(), 1, 5)
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != server.CodeUnsupported {
		t.Fatalf("client error = %v, want *client.Error with code %s", err, server.CodeUnsupported)
	}
}
